#include "core/online.h"

#include <algorithm>

#include "common/error.h"

namespace hmpt::tuner {

OnlineTuner::OnlineTuner(sim::MachineSimulator& sim,
                         sim::ExecutionContext ctx,
                         OnlineTunerOptions options)
    : sim_(&sim), ctx_(ctx), options_(options) {
  HMPT_REQUIRE(options_.max_iterations >= 1, "need >= 1 iteration");
  HMPT_REQUIRE(options_.patience >= 1, "patience must be >= 1");
}

double OnlineTuner::observe(
    const sim::PhaseTrace& trace, const ConfigSpace& space, ConfigMask mask,
    std::unordered_map<ConfigMask, std::uint32_t>& visits) {
  const std::uint64_t rep = visits[mask]++;
  return sim_->measure_trace(trace, space.placement(mask), ctx_,
                             {mask, rep});
}

OnlineResult OnlineTuner::tune(const workloads::Workload& workload,
                               const ConfigSpace& space) {
  HMPT_REQUIRE(space.num_groups() == workload.num_groups(),
               "space/workload arity mismatch");
  const auto trace = workload.trace();
  const int n = space.num_groups();
  const int tiers = space.num_tiers();
  const double unlimited = space.total_bytes() + 1.0;

  // Per-tier capacity caps: tier 0 (DDR) is the unconstrained baseline;
  // tier 1 honours the legacy hbm_budget_bytes unless tier_budget_bytes
  // overrides it.
  std::vector<double> caps(static_cast<std::size_t>(tiers), unlimited);
  for (int t = 1; t < tiers; ++t) {
    const auto ti = static_cast<std::size_t>(t);
    if (ti < options_.tier_budget_bytes.size() &&
        options_.tier_budget_bytes[ti] > 0.0)
      caps[ti] = options_.tier_budget_bytes[ti];
    else if (t == 1 && options_.hbm_budget_bytes > 0.0)
      caps[ti] = options_.hbm_budget_bytes;
  }

  // Place value of each group's digit, for single-move id updates.
  std::vector<ConfigMask> place(static_cast<std::size_t>(n), 1);
  for (int g = 0; g < n; ++g)
    place[static_cast<std::size_t>(g)] = config_place_value(g, tiers);

  OnlineResult result;
  std::unordered_map<ConfigMask, std::uint32_t> visits;
  ConfigMask mask = 0;
  std::vector<int> tier(static_cast<std::size_t>(n), 0);  ///< current digits
  double current = observe(trace, space, mask, visits);
  result.baseline_time = current;
  if (options_.on_baseline) options_.on_baseline(current);
  int iterations = 1;
  int rejections = 0;

  // Heuristic priority: sampled access density per byte — the quantity
  // the IBS profile gives the online controller for free.
  std::vector<double> density(static_cast<std::size_t>(n), 0.0);
  for (int g = 0; g < n; ++g)
    density[static_cast<std::size_t>(g)] =
        trace.access_fraction(g) /
        std::max(1.0, space.group_bytes()[static_cast<std::size_t>(g)]);

  // Directional weight of a tier move: the difference of the tiers' speed
  // ranks (position in the saturated-bandwidth ordering; bandwidth ties
  // break toward the lower tier index), normalised to [-1, 1]. For two
  // tiers with HBM at least as fast as DDR the weights are exactly the
  // +1/-1 of the original flip heuristic, so the candidate scores — and
  // hence the measurement order and noise streams — match the
  // pre-refactor tuner bit for bit.
  std::vector<int> order(static_cast<std::size_t>(tiers), 0);
  for (int t = 0; t < tiers; ++t) order[static_cast<std::size_t>(t)] = t;
  const auto bw = [&](int t) {
    return sim_->config().of(static_cast<topo::PoolKind>(t))
        .sat_bandwidth_per_tile;
  };
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (bw(a) != bw(b)) return bw(a) < bw(b);
    return a < b;
  });
  std::vector<double> rank(static_cast<std::size_t>(tiers), 0.0);
  for (int r = 0; r < tiers; ++r)
    rank[static_cast<std::size_t>(order[static_cast<std::size_t>(r)])] = r;

  while (iterations < options_.max_iterations &&
         rejections < options_.patience) {
    // Candidate moves, best heuristic first: hot groups toward fast
    // tiers, cold groups toward slow ones.
    struct Candidate {
      int group;
      int to_tier;
      double score;
    };
    std::vector<Candidate> candidates;
    for (int g = 0; g < n; ++g) {
      const auto gi = static_cast<std::size_t>(g);
      const int from = tier[gi];
      for (int to = 0; to < tiers; ++to) {
        if (to == from) continue;
        if (to != 0) {
          // Would the move blow the target tier's capacity?
          const double used =
              space.tier_bytes(mask, static_cast<topo::PoolKind>(to));
          if (used + space.group_bytes()[gi] >
              caps[static_cast<std::size_t>(to)])
            continue;
        }
        const double weight = (rank[static_cast<std::size_t>(to)] -
                               rank[static_cast<std::size_t>(from)]) /
                              static_cast<double>(tiers - 1);
        candidates.push_back({g, to, weight * density[gi]});
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.score > b.score;
              });

    bool improved = false;
    for (const auto& candidate : candidates) {
      if (iterations >= options_.max_iterations) break;
      const auto gi = static_cast<std::size_t>(candidate.group);
      const ConfigMask trial_mask =
          mask + (static_cast<ConfigMask>(candidate.to_tier) * place[gi] -
                  static_cast<ConfigMask>(tier[gi]) * place[gi]);
      const double trial = observe(trace, space, trial_mask, visits);
      ++iterations;

      OnlineStep step;
      step.iteration = iterations;
      step.moved_group = candidate.group;
      step.to_tier = candidate.to_tier;
      step.observed_time = trial;
      step.tried_mask = trial_mask;
      step.kept = trial < current * (1.0 - options_.keep_threshold);
      step.mask = step.kept ? trial_mask : mask;
      result.trajectory.push_back(step);
      if (options_.on_step) options_.on_step(step);

      if (step.kept) {
        mask = trial_mask;
        tier[gi] = candidate.to_tier;
        current = trial;
        improved = true;
        break;  // re-rank candidates from the new state
      }
    }
    if (improved) {
      rejections = 0;
    } else {
      // A full pass found nothing; with measurement noise a further pass
      // (up to `patience` of them) may still flip a verdict.
      ++rejections;
      if (candidates.empty()) break;
    }
  }

  result.final_mask = mask;
  result.final_time = current;
  result.speedup = result.baseline_time / current;
  result.iterations_used = iterations;
  return result;
}

}  // namespace hmpt::tuner
