#include "core/online.h"

#include <algorithm>

#include "common/error.h"

namespace hmpt::tuner {

OnlineTuner::OnlineTuner(sim::MachineSimulator& sim,
                         sim::ExecutionContext ctx,
                         OnlineTunerOptions options)
    : sim_(&sim), ctx_(ctx), options_(options) {
  HMPT_REQUIRE(options_.max_iterations >= 1, "need >= 1 iteration");
  HMPT_REQUIRE(options_.patience >= 1, "patience must be >= 1");
}

double OnlineTuner::observe(
    const sim::PhaseTrace& trace, const ConfigSpace& space, ConfigMask mask,
    std::unordered_map<ConfigMask, std::uint32_t>& visits) {
  const std::uint64_t rep = visits[mask]++;
  return sim_->measure_trace(trace, space.placement(mask), ctx_,
                             {mask, rep});
}

OnlineResult OnlineTuner::tune(const workloads::Workload& workload,
                               const ConfigSpace& space) {
  HMPT_REQUIRE(space.num_groups() == workload.num_groups(),
               "space/workload arity mismatch");
  const auto trace = workload.trace();
  const int n = space.num_groups();
  const double budget = options_.hbm_budget_bytes > 0.0
                            ? options_.hbm_budget_bytes
                            : space.total_bytes() + 1.0;

  OnlineResult result;
  std::unordered_map<ConfigMask, std::uint32_t> visits;
  ConfigMask mask = 0;
  double current = observe(trace, space, mask, visits);
  result.baseline_time = current;
  if (options_.on_baseline) options_.on_baseline(current);
  int iterations = 1;
  int rejections = 0;

  // Heuristic priority: sampled access density per byte — the quantity
  // the IBS profile gives the online controller for free.
  std::vector<double> density(static_cast<std::size_t>(n), 0.0);
  for (int g = 0; g < n; ++g)
    density[static_cast<std::size_t>(g)] =
        trace.access_fraction(g) /
        std::max(1.0, space.group_bytes()[static_cast<std::size_t>(g)]);

  while (iterations < options_.max_iterations &&
         rejections < options_.patience) {
    // Candidate flips, best heuristic first: move hot groups in, cold
    // groups out.
    struct Candidate {
      int group;
      bool to_hbm;
      double score;
    };
    std::vector<Candidate> candidates;
    for (int g = 0; g < n; ++g) {
      const bool in_hbm = mask & (ConfigMask{1} << g);
      if (!in_hbm) {
        if (space.hbm_bytes(mask) +
                space.group_bytes()[static_cast<std::size_t>(g)] >
            budget)
          continue;  // would blow the budget
        candidates.push_back({g, true,
                              density[static_cast<std::size_t>(g)]});
      } else {
        candidates.push_back({g, false,
                              -density[static_cast<std::size_t>(g)]});
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.score > b.score;
              });

    bool improved = false;
    for (const auto& candidate : candidates) {
      if (iterations >= options_.max_iterations) break;
      const ConfigMask trial_mask =
          mask ^ (ConfigMask{1} << candidate.group);
      const double trial = observe(trace, space, trial_mask, visits);
      ++iterations;

      OnlineStep step;
      step.iteration = iterations;
      step.moved_group = candidate.group;
      step.to_hbm = candidate.to_hbm;
      step.observed_time = trial;
      step.kept = trial < current * (1.0 - options_.keep_threshold);
      step.mask = step.kept ? trial_mask : mask;
      result.trajectory.push_back(step);
      if (options_.on_step) options_.on_step(step);

      if (step.kept) {
        mask = trial_mask;
        current = trial;
        improved = true;
        break;  // re-rank candidates from the new state
      }
    }
    if (improved) {
      rejections = 0;
    } else {
      // A full pass found nothing; with measurement noise a further pass
      // (up to `patience` of them) may still flip a verdict.
      ++rejections;
      if (candidates.empty()) break;
    }
  }

  result.final_mask = mask;
  result.final_time = current;
  result.speedup = result.baseline_time / current;
  result.iterations_used = iterations;
  return result;
}

}  // namespace hmpt::tuner
