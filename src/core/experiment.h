// experiment.h — the measurement campaign over the configuration space.
//
// For a fixed workload, the runner measures every placement configuration
// n times on the (simulated) platform and aggregates speedups relative to
// the all-DDR baseline — the roughly 2^|AG| * n measurements of Sec. III-A.
#pragma once

#include <functional>
#include <vector>

#include "core/config_space.h"
#include "simmem/simulator.h"
#include "workloads/workload.h"

namespace hmpt::tuner {

/// Aggregated result of one placement configuration.
struct ConfigResult {
  ConfigMask mask = 0;
  double mean_time = 0.0;
  double stddev_time = 0.0;
  double speedup = 0.0;       ///< vs. the all-DDR baseline's mean time
  double hbm_usage = 0.0;     ///< footprint fraction in HBM
  double hbm_density = 0.0;   ///< access fraction (bytes) served from HBM
  int groups_in_hbm = 0;
};

struct ExperimentOptions {
  int repetitions = 3;  ///< n runs averaged per configuration
  /// When true, enumerate in Gray order (adjacent configs differ by one
  /// group); results are returned sorted by mask either way.
  bool gray_order = true;
};

/// Full sweep outcome.
struct SweepResult {
  std::vector<ConfigResult> configs;  ///< sorted by mask; [0] = all-DDR
  double baseline_time = 0.0;

  /// The result of `mask`. Throws hmpt::Error when the sweep holds no such
  /// configuration (out-of-range mask, or a table that was never measured
  /// at that mask) instead of returning an unrelated or zeroed entry.
  const ConfigResult& of(ConfigMask mask) const;
  const ConfigResult& all_ddr() const { return of(0); }
  const ConfigResult& all_hbm() const;
  int num_groups = 0;
};

/// Observer invoked after each configuration finishes measuring.
using ConfigCallback = std::function<void(const ConfigResult&)>;

class ExperimentRunner {
 public:
  ExperimentRunner(sim::MachineSimulator& sim, sim::ExecutionContext ctx,
                   ExperimentOptions options = {});

  /// Measure every configuration of `space` for `workload`. `on_config`
  /// (when given) fires once per configuration in measurement order — the
  /// hook the strategy layer uses for progress reporting.
  SweepResult sweep(const workloads::Workload& workload,
                    const ConfigSpace& space);
  SweepResult sweep(const workloads::Workload& workload,
                    const ConfigSpace& space,
                    const ConfigCallback& on_config);

  /// Measure a single configuration (n repetitions).
  ConfigResult measure(const workloads::Workload& workload,
                       const ConfigSpace& space, ConfigMask mask,
                       double baseline_time);

 private:
  sim::MachineSimulator* sim_;
  sim::ExecutionContext ctx_;
  ExperimentOptions options_;
};

/// Fraction of trace bytes that land in HBM under `placement` — the
/// model-side analogue of the blue crosses in Fig. 7a.
double hbm_access_fraction(const sim::PhaseTrace& trace,
                           const sim::Placement& placement);

}  // namespace hmpt::tuner
