// experiment.h — the measurement campaign over the configuration space.
//
// For a fixed workload, the runner measures every placement configuration
// n times on the (simulated) platform and aggregates speedups relative to
// the all-DDR baseline — the roughly 2^|AG| * n measurements of Sec. III-A
// on the paper's two-tier platform, k^|AG| * n on a k-tier machine.
//
// The campaign is the tuner's hot path, so the runner scales it two ways:
//   * parallelism — `jobs` worker threads split the enumeration into
//     contiguous chunks (the simulator is const and thread-safe);
//   * memoization — each worker re-times only the phases whose allocation
//     group moved tier, exploiting the Gray-order enumeration (one group
//     moves one tier per step, at any k) through a per-worker
//     CachedTraceTimer, and the deterministic trace time is computed once
//     per configuration with per-repetition noise applied on top instead
//     of re-timing every repetition.
// Both are exact: serial, parallel, memoized and unmemoized sweeps return
// bit-identical SweepResults (the simulator's per-(mask, repetition) noise
// streams are order-independent, and the cache stores exact doubles).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/config_space.h"
#include "simmem/simulator.h"
#include "simmem/timing_cache.h"
#include "workloads/workload.h"

namespace hmpt {
class ThreadPool;
}

namespace hmpt::tuner {

/// Aggregated result of one placement configuration.
struct ConfigResult {
  ConfigMask mask = 0;
  double mean_time = 0.0;
  double stddev_time = 0.0;
  double speedup = 0.0;       ///< vs. the all-DDR baseline's mean time
  double hbm_usage = 0.0;     ///< footprint fraction in HBM
  double hbm_density = 0.0;   ///< access fraction (bytes) served from HBM
  int groups_in_hbm = 0;
};

struct ExperimentOptions {
  int repetitions = 3;  ///< n runs averaged per configuration
  /// When true, enumerate in Gray order (adjacent configs differ by one
  /// group); results are returned sorted by mask either way.
  bool gray_order = true;
  /// Worker threads measuring configurations; 1 = serial in the calling
  /// thread, 0 = all hardware threads. Results are bit-identical at any
  /// job count.
  int jobs = 1;
  /// Memoize per-phase timings across configurations (exact; see header).
  bool memoize = true;
};

/// Full sweep outcome.
struct SweepResult {
  std::vector<ConfigResult> configs;  ///< sorted by mask; [0] = all-DDR
  double baseline_time = 0.0;

  /// The result of `mask`. Throws hmpt::Error when the sweep holds no such
  /// configuration (out-of-range mask, or a table that was never measured
  /// at that mask) instead of returning an unrelated or zeroed entry.
  const ConfigResult& of(ConfigMask mask) const;
  const ConfigResult& all_ddr() const { return of(0); }
  /// The configuration with every group in HBM (tier 1); on a two-tier
  /// sweep this is the last configuration, as before.
  const ConfigResult& all_hbm() const;
  int num_groups = 0;
  int num_tiers = 2;  ///< tier count of the space the sweep enumerated
};

/// Observer invoked after each configuration finishes measuring.
using ConfigCallback = std::function<void(const ConfigResult&)>;

class ExperimentRunner {
 public:
  ExperimentRunner(sim::MachineSimulator& sim, sim::ExecutionContext ctx,
                   ExperimentOptions options = {});

  /// Measure every configuration of `space` for `workload`. `on_config`
  /// (when given) fires once per configuration, always from the calling
  /// thread and always in enumeration order (baseline first, then Gray or
  /// natural order) whatever the job count — the hook the strategy layer
  /// uses for progress reporting.
  SweepResult sweep(const workloads::Workload& workload,
                    const ConfigSpace& space);
  SweepResult sweep(const workloads::Workload& workload,
                    const ConfigSpace& space,
                    const ConfigCallback& on_config);

  /// Measure a single configuration (n repetitions).
  ConfigResult measure(const workloads::Workload& workload,
                       const ConfigSpace& space, ConfigMask mask,
                       double baseline_time);

  /// Measure a batch of configurations (in parallel when options.jobs says
  /// so); results are returned in the order of `masks` and are identical
  /// to measuring each mask serially. The partial-space counterpart of
  /// sweep() for strategies that probe selected configurations.
  std::vector<ConfigResult> measure_batch(const workloads::Workload& workload,
                                          const ConfigSpace& space,
                                          const std::vector<ConfigMask>& masks,
                                          double baseline_time);

  /// The worker-thread count a sweep will actually use.
  int resolved_jobs() const;

 private:
  /// Per-group trace traffic, precomputed once per campaign so HBM access
  /// density is O(groups) per configuration instead of O(streams).
  struct TraceStats {
    std::vector<double> group_bytes;  ///< bytes accessed per group
    double total_bytes = 0.0;
  };
  static TraceStats trace_stats(const sim::PhaseTrace& trace, int num_groups);

  ConfigResult measure_config(const sim::PhaseTrace& trace,
                              const TraceStats& stats,
                              const ConfigSpace& space, ConfigMask mask,
                              double baseline_time,
                              sim::CachedTraceTimer* timer) const;

  /// The worker pool, created on the first parallel campaign and reused
  /// across sweeps and batches (its threads persist).
  ThreadPool& pool();

  sim::MachineSimulator* sim_;
  sim::ExecutionContext ctx_;
  ExperimentOptions options_;
  std::shared_ptr<ThreadPool> pool_;  ///< shared so runners stay copyable
};

/// Fraction of trace bytes that land in HBM under `placement` — the
/// model-side analogue of the blue crosses in Fig. 7a.
double hbm_access_fraction(const sim::PhaseTrace& trace,
                           const sim::Placement& placement);

}  // namespace hmpt::tuner
