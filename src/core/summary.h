// summary.h — the paper's headline analysis of a placement sweep.
//
// Produces the quantities of Table II and the summary views (Figs. 7b,
// 9-15): maximum speedup and its configuration, HBM-only speedup, the
// 90 %-of-max threshold, and the minimum HBM footprint that reaches it.
#pragma once

#include <vector>

#include "core/estimator.h"
#include "core/experiment.h"

namespace hmpt::tuner {

struct SummaryPoint {
  ConfigMask mask = 0;
  double hbm_usage = 0.0;
  double speedup = 0.0;
  double estimate = 0.0;  ///< linear-estimator speedup
  bool single_group = false;
};

struct SummaryAnalysis {
  int num_groups = 0;  ///< arity of the analysed space
  int num_tiers = 2;   ///< tier count of the analysed space
  double max_speedup = 0.0;
  ConfigMask max_mask = 0;
  double max_usage = 0.0;        ///< HBM usage of the best configuration
  double hbm_only_speedup = 0.0;
  double threshold90 = 0.0;      ///< 1 + 0.9 (max - 1)
  /// Smallest-footprint configuration with speedup >= threshold90.
  ConfigMask usage90_mask = 0;
  double usage90 = 0.0;          ///< its HBM usage (Table II last column)
  double usage90_speedup = 0.0;
  std::vector<SummaryPoint> points;  ///< the full scatter (Fig. 7b)
};

/// Analyse a finished sweep. `fraction` generalises the 90 % criterion.
SummaryAnalysis summarize(const SweepResult& sweep, double fraction = 0.9);

}  // namespace hmpt::tuner
