// report.h — the detailed and summary views of an analysed workload.
//
// Renders exactly what Figs. 7a/7b show: the detailed view lists every
// configuration with measured and linear-estimate speedup, HBM usage and
// HBM access-sample fraction (bars + table); the summary view is the
// speedup-vs-footprint scatter with the max and 90 %-of-max reference
// lines. Both render as CSV (for plotting) and as ASCII.
#pragma once

#include <string>

#include "common/chart.h"
#include "common/table.h"
#include "core/summary.h"

namespace hmpt::tuner {

/// Human-readable configuration label. Two tiers keep the paper's Fig. 7a
/// x-label format "[0 2 3]" (the groups in HBM); k > 2 tiers annotate each
/// promoted group with its tier, e.g. "[0:HBM 2:CXL]". All-DDR is "[DDR]".
std::string mask_label(ConfigMask mask, int num_groups, int num_tiers = 2);

struct DetailedView {
  Table table;            ///< one row per configuration
  std::string bar_chart;  ///< measured vs estimated speedup bars
};

struct SummaryView {
  Table table;
  std::string scatter;  ///< the Fig. 7b-style chart
};

/// Fig. 7a equivalent. `max_rank` limits rows to configurations with at
/// most that many groups in HBM (0 = no limit); the paper shows ranks
/// 1..n for MG's three groups.
DetailedView render_detailed_view(const SweepResult& sweep,
                                  const SummaryAnalysis& summary,
                                  int max_rank = 0);

/// Fig. 7b / Figs. 9-15 equivalent for one workload.
SummaryView render_summary_view(const SummaryAnalysis& summary,
                                const std::string& workload_name);

/// One-line Table II-style row: name, max, HBM-only, usage at 90 %.
std::vector<std::string> table2_row(const std::string& name,
                                    const SummaryAnalysis& summary);

}  // namespace hmpt::tuner
