// online.h — iterative online placement tuning.
//
// The paper positions its tool as "the first step towards a more dynamic
// approach ... potentially allows for online profiling and control"
// (Sec. III). This module implements that extension: instead of sweeping
// all 2^n configurations offline, the tuner starts from all-DDR and
// adjusts the placement between iterations of the running application —
// observe one iteration's time, greedily move (or evict) the group with
// the best expected marginal gain per HBM byte, keep the move only if the
// next observed iteration confirms it. Converges in O(n^2) iterations
// instead of O(2^n) runs and respects the per-tier capacity budgets
// throughout. On a k-tier machine candidate moves cover every
// (group, other tier) pair; for k = 2 the search is exactly the original
// HBM flip sequence.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "core/config_space.h"
#include "simmem/simulator.h"
#include "workloads/workload.h"

namespace hmpt::tuner {

/// One step of the tuning trajectory.
struct OnlineStep {
  int iteration = 0;
  ConfigMask mask = 0;        ///< placement after the step
  ConfigMask tried_mask = 0;  ///< placement measured this step
  double observed_time = 0.0;
  int moved_group = -1;       ///< group moved this step (-1: none)
  int to_tier = 0;            ///< tier the group moved to (PoolKind value)
  bool kept = false;          ///< move survived its confirmation run
};

struct OnlineTunerOptions {
  double hbm_budget_bytes = 0.0;  ///< <= 0: unlimited
  /// Per-tier capacity caps indexed by tier (PoolKind value); <= 0 entries
  /// and tiers beyond the vector are unlimited. When set for tier 1 it
  /// takes precedence over the legacy `hbm_budget_bytes`.
  std::vector<double> tier_budget_bytes;
  /// Relative improvement a trial move must show to be kept.
  double keep_threshold = 1e-3;
  /// Stop after this many consecutive rejected trials.
  int patience = 3;
  int max_iterations = 200;
  /// Observer fired once with the first (all-DDR) observation, before any
  /// trial steps; may be empty.
  std::function<void(double)> on_baseline;
  /// Observer fired after each trial run (the strategy layer's progress
  /// hook); may be empty.
  std::function<void(const OnlineStep&)> on_step;
};

struct OnlineResult {
  ConfigMask final_mask = 0;
  double final_time = 0.0;
  double baseline_time = 0.0;  ///< first (all-DDR) observation
  double speedup = 0.0;
  int iterations_used = 0;
  std::vector<OnlineStep> trajectory;
};

class OnlineTuner {
 public:
  OnlineTuner(sim::MachineSimulator& sim, sim::ExecutionContext ctx,
              OnlineTunerOptions options = {});

  /// Tune `workload` online: each "iteration" costs one measured run of
  /// the workload's trace under the current placement.
  OnlineResult tune(const workloads::Workload& workload,
                    const ConfigSpace& space);

 private:
  /// One measured run of `mask`. `visits` counts prior observations per
  /// mask (sparse — the greedy search touches O(iterations) of the 2^n
  /// masks): the i-th observation of a mask draws noise stream (mask, i),
  /// matching the i-th repetition of an exhaustive sweep over the same
  /// configuration (the simulator's determinism guarantee).
  double observe(const sim::PhaseTrace& trace, const ConfigSpace& space,
                 ConfigMask mask,
                 std::unordered_map<ConfigMask, std::uint32_t>& visits);

  sim::MachineSimulator* sim_;
  sim::ExecutionContext ctx_;
  OnlineTunerOptions options_;
};

}  // namespace hmpt::tuner
