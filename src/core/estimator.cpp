#include "core/estimator.h"

#include <cmath>

#include "common/error.h"

namespace hmpt::tuner {

namespace {

/// Configuration id of "group g alone in tier t": t * num_tiers^g.
ConfigMask single_id(int group, int tier, int num_tiers) {
  return static_cast<ConfigMask>(tier) * config_place_value(group, num_tiers);
}

}  // namespace

LinearEstimator::LinearEstimator(const SweepResult& sweep)
    : num_groups_(sweep.num_groups), num_tiers_(sweep.num_tiers) {
  HMPT_REQUIRE(sweep.num_groups >= 1, "sweep has no groups");
  HMPT_REQUIRE(sweep.num_groups <= ConfigSpace::kMaxGroups,
               "estimator limited to ConfigSpace::kMaxGroups groups");
  HMPT_REQUIRE(num_tiers_ >= 2 && num_tiers_ <= topo::kNumPoolKinds,
               "sweep tier count out of range");
  single_speedups_.resize(static_cast<std::size_t>(num_groups_) *
                          static_cast<std::size_t>(num_tiers_ - 1));
  for (int g = 0; g < num_groups_; ++g)
    for (int t = 1; t < num_tiers_; ++t)
      single_speedups_[static_cast<std::size_t>(g * (num_tiers_ - 1) +
                                                (t - 1))] =
          sweep.of(single_id(g, t, num_tiers_)).speedup;
}

LinearEstimator::LinearEstimator(std::vector<double> single_speedups,
                                 int num_tiers)
    : single_speedups_(std::move(single_speedups)), num_tiers_(num_tiers) {
  HMPT_REQUIRE(!single_speedups_.empty(), "estimator needs >= 1 group");
  HMPT_REQUIRE(num_tiers_ >= 2 && num_tiers_ <= topo::kNumPoolKinds,
               "estimator needs 2 <= num_tiers <= kNumPoolKinds");
  HMPT_REQUIRE(single_speedups_.size() %
                       static_cast<std::size_t>(num_tiers_ - 1) ==
                   0,
               "single speedups must cover every (group, tier) pair");
  num_groups_ = static_cast<int>(single_speedups_.size() /
                                 static_cast<std::size_t>(num_tiers_ - 1));
  // Ids are 64-bit; past kMaxGroups the k^n spaces stop being tractable
  // long before the arithmetic would overflow anyway.
  HMPT_REQUIRE(num_groups_ <= ConfigSpace::kMaxGroups,
               "estimator limited to ConfigSpace::kMaxGroups groups");
}

double LinearEstimator::single_speedup(int group) const {
  return single_speedup(group, 1);
}

double LinearEstimator::single_speedup(int group, int tier) const {
  HMPT_REQUIRE(group >= 0 && group < num_groups(), "group out of range");
  HMPT_REQUIRE(tier >= 1 && tier < num_tiers_, "tier out of range");
  return single_speedups_[static_cast<std::size_t>(
      group * (num_tiers_ - 1) + (tier - 1))];
}

std::size_t LinearEstimator::configs() const {
  return config_count(num_groups_, num_tiers_);
}

double LinearEstimator::estimate(ConfigMask mask) const {
  HMPT_REQUIRE(mask < configs(), "mask out of range");
  const auto k = static_cast<ConfigMask>(num_tiers_);
  double est = 1.0;
  for (int g = 0; g < num_groups(); ++g) {
    const int tier = static_cast<int>(mask % k);
    mask /= k;
    if (tier != 0) est += single_speedup(g, tier) - 1.0;
  }
  return est;
}

std::vector<double> LinearEstimator::estimate_all() const {
  std::vector<double> out(configs());
  for (std::size_t mask = 0; mask < out.size(); ++mask)
    out[mask] = estimate(static_cast<ConfigMask>(mask));
  return out;
}

EstimatorError estimator_error(const SweepResult& sweep,
                               const LinearEstimator& estimator) {
  HMPT_REQUIRE(sweep.num_groups == estimator.num_groups(),
               "arity mismatch");
  HMPT_REQUIRE(sweep.num_tiers == estimator.num_tiers(),
               "tier-count mismatch");
  EstimatorError err;
  double sq_sum = 0.0, abs_sum = 0.0;
  for (const auto& cfg : sweep.configs) {
    const double e = estimator.estimate(cfg.mask) - cfg.speedup;
    abs_sum += std::fabs(e);
    sq_sum += e * e;
    if (std::fabs(e) > err.max_abs) {
      err.max_abs = std::fabs(e);
      err.worst_mask = cfg.mask;
    }
  }
  const double n = static_cast<double>(sweep.configs.size());
  err.mean_abs = abs_sum / n;
  err.rmse = std::sqrt(sq_sum / n);
  return err;
}

}  // namespace hmpt::tuner
