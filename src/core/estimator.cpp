#include "core/estimator.h"

#include <cmath>

#include "common/error.h"

namespace hmpt::tuner {

LinearEstimator::LinearEstimator(const SweepResult& sweep) {
  HMPT_REQUIRE(sweep.num_groups >= 1, "sweep has no groups");
  HMPT_REQUIRE(sweep.num_groups <= ConfigSpace::kMaxGroups,
               "estimator limited to ConfigSpace::kMaxGroups groups");
  single_speedups_.resize(static_cast<std::size_t>(sweep.num_groups));
  for (int g = 0; g < sweep.num_groups; ++g)
    single_speedups_[static_cast<std::size_t>(g)] =
        sweep.of(ConfigMask{1} << g).speedup;
}

LinearEstimator::LinearEstimator(std::vector<double> single_speedups)
    : single_speedups_(std::move(single_speedups)) {
  HMPT_REQUIRE(!single_speedups_.empty(), "estimator needs >= 1 group");
  // Masks are 32-bit; past kMaxGroups the shift in estimate() would be
  // undefined long before the 2^n spaces became tractable anyway.
  HMPT_REQUIRE(single_speedups_.size() <=
                   static_cast<std::size_t>(ConfigSpace::kMaxGroups),
               "estimator limited to ConfigSpace::kMaxGroups groups");
}

double LinearEstimator::single_speedup(int group) const {
  HMPT_REQUIRE(group >= 0 && group < num_groups(), "group out of range");
  return single_speedups_[static_cast<std::size_t>(group)];
}

double LinearEstimator::estimate(ConfigMask mask) const {
  HMPT_REQUIRE(mask < (ConfigMask{1} << num_groups()), "mask out of range");
  double est = 1.0;
  for (int g = 0; g < num_groups(); ++g)
    if (mask & (ConfigMask{1} << g))
      est += single_speedups_[static_cast<std::size_t>(g)] - 1.0;
  return est;
}

std::vector<double> LinearEstimator::estimate_all() const {
  std::vector<double> out(std::size_t{1} << num_groups());
  for (std::size_t mask = 0; mask < out.size(); ++mask)
    out[mask] = estimate(static_cast<ConfigMask>(mask));
  return out;
}

EstimatorError estimator_error(const SweepResult& sweep,
                               const LinearEstimator& estimator) {
  HMPT_REQUIRE(sweep.num_groups == estimator.num_groups(),
               "arity mismatch");
  EstimatorError err;
  double sq_sum = 0.0, abs_sum = 0.0;
  for (const auto& cfg : sweep.configs) {
    const double e = estimator.estimate(cfg.mask) - cfg.speedup;
    abs_sum += std::fabs(e);
    sq_sum += e * e;
    if (std::fabs(e) > err.max_abs) {
      err.max_abs = std::fabs(e);
      err.worst_mask = cfg.mask;
    }
  }
  const double n = static_cast<double>(sweep.configs.size());
  err.mean_abs = abs_sum / n;
  err.rmse = std::sqrt(sq_sum / n);
  return err;
}

}  // namespace hmpt::tuner
