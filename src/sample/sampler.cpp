#include "sample/sampler.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace hmpt::sample {

double SampleReport::density(std::uint64_t tag) const {
  const std::uint64_t attributed = samples_kept - samples_unattributed;
  if (attributed == 0) return 0.0;
  return static_cast<double>(samples_of(tag)) /
         static_cast<double>(attributed);
}

std::uint64_t SampleReport::samples_of(std::uint64_t tag) const {
  for (const auto& t : per_tag)
    if (t.tag == tag) return t.samples;
  return 0;
}

IbsSampler::IbsSampler(SamplerConfig config)
    : config_(config), rng_(config.seed) {
  HMPT_REQUIRE(config_.period >= 1, "sampling period must be >= 1");
  countdown_ = draw_gap();
}

std::uint64_t IbsSampler::draw_gap() {
  if (config_.mode == SamplingMode::Systematic) return config_.period;
  // Geometric gap with mean `period`: hardware samplers jitter the period
  // so loop-synchronous access patterns are not systematically missed.
  const double u = rng_.next_exponential(1.0 /
                                         static_cast<double>(config_.period));
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(u));
}

void IbsSampler::feed(const AccessEvent& event, const pools::PageMap& map) {
  ++events_seen_;
  if (--countdown_ > 0) return;
  countdown_ = draw_gap();
  ++samples_kept_;

  const auto range = map.lookup(event.address);
  if (!range) {
    ++unattributed_;
    return;
  }
  TagSamples& agg = per_tag_[range->tag];
  agg.tag = range->tag;
  agg.node = range->node;
  ++agg.samples;
  if (event.is_write) ++agg.writes;
  agg.latency_sum += event.latency;
}

void IbsSampler::feed_synthetic(std::uint64_t tag, int node,
                                std::uint64_t events, double write_fraction,
                                double latency) {
  HMPT_REQUIRE(write_fraction >= 0.0 && write_fraction <= 1.0,
               "write fraction out of range");
  events_seen_ += events;
  // Expected kept samples = events/period; binomial-ish noise via Poisson
  // approximation keeps densities realistic for the tuner's estimators.
  const double expected =
      static_cast<double>(events) / static_cast<double>(config_.period);
  std::uint64_t kept;
  if (config_.mode == SamplingMode::Systematic) {
    kept = static_cast<std::uint64_t>(std::llround(expected));
  } else {
    // Normal approximation of Poisson(expected), clamped at zero.
    const double noisy = rng_.next_gaussian(expected, std::sqrt(
                                                std::max(expected, 1e-9)));
    kept = noisy > 0 ? static_cast<std::uint64_t>(std::llround(noisy)) : 0;
  }
  if (kept == 0) return;
  samples_kept_ += kept;
  TagSamples& agg = per_tag_[tag];
  agg.tag = tag;
  agg.node = node;
  agg.samples += kept;
  agg.writes += static_cast<std::uint64_t>(
      std::llround(write_fraction * static_cast<double>(kept)));
  agg.latency_sum += latency * static_cast<double>(kept);
}

SampleReport IbsSampler::report() const {
  SampleReport rep;
  rep.events_seen = events_seen_;
  rep.samples_kept = samples_kept_;
  rep.samples_unattributed = unattributed_;
  rep.per_tag.reserve(per_tag_.size());
  for (const auto& [tag, agg] : per_tag_) rep.per_tag.push_back(agg);
  std::sort(rep.per_tag.begin(), rep.per_tag.end(),
            [](const TagSamples& a, const TagSamples& b) {
              return a.tag < b.tag;
            });
  return rep;
}

void IbsSampler::reset() {
  events_seen_ = samples_kept_ = unattributed_ = 0;
  per_tag_.clear();
  countdown_ = draw_gap();
}

}  // namespace hmpt::sample
