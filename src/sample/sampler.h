// sampler.h — instruction-based-sampling emulation (IBS/PEBS).
//
// The paper samples memory accesses with hardware IBS/PEBS through the
// Linux perf API and intersects sample addresses with the known allocation
// ranges to estimate per-allocation access density, latency and hit rates
// (Sec. III). Here the workloads emit an access-event stream; the sampler
// keeps every Nth event (systematic) or Poisson-spaced events (hardware
// samplers randomise the period to avoid lock-step aliasing with loops) and
// attributes kept samples to allocations through the PageMap.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "pools/page_map.h"
#include "topo/machine.h"

namespace hmpt::sample {

/// One memory access as emitted by an instrumented workload.
struct AccessEvent {
  std::uintptr_t address = 0;
  bool is_write = false;
  /// Load-to-use latency of the access in seconds (0 when unknown).
  double latency = 0.0;
};

/// Sampling discipline.
enum class SamplingMode {
  Systematic,  ///< keep exactly every period-th event
  Poisson,     ///< geometric gaps with mean = period (hardware-like)
};

struct SamplerConfig {
  std::uint64_t period = 1024;  ///< mean events per kept sample
  SamplingMode mode = SamplingMode::Poisson;
  std::uint64_t seed = 7;
};

/// Per-allocation-tag sample aggregate.
struct TagSamples {
  std::uint64_t tag = 0;
  std::uint64_t samples = 0;
  std::uint64_t writes = 0;
  double latency_sum = 0.0;
  int node = -1;

  double mean_latency() const {
    return samples ? latency_sum / static_cast<double>(samples) : 0.0;
  }
  double write_fraction() const {
    return samples ? static_cast<double>(writes) /
                         static_cast<double>(samples)
                   : 0.0;
  }
};

/// Full sampling report over one profiled run.
struct SampleReport {
  std::uint64_t events_seen = 0;
  std::uint64_t samples_kept = 0;
  std::uint64_t samples_unattributed = 0;  ///< address outside any range
  std::vector<TagSamples> per_tag;         ///< sorted by tag

  /// Fraction of attributed samples falling into `tag` — the paper's
  /// "relative memory access density" of an allocation.
  double density(std::uint64_t tag) const;
  std::uint64_t samples_of(std::uint64_t tag) const;
};

class IbsSampler {
 public:
  explicit IbsSampler(SamplerConfig config = {});

  /// Feed one access; cheap (a counter decrement) unless the event is kept.
  void feed(const AccessEvent& event, const pools::PageMap& map);

  /// Feed a batch of synthetic accesses into `tag` directly (used when the
  /// access stream is generated analytically rather than executed).
  void feed_synthetic(std::uint64_t tag, int node, std::uint64_t events,
                      double write_fraction, double latency);

  SampleReport report() const;
  void reset();

  const SamplerConfig& config() const { return config_; }

 private:
  std::uint64_t draw_gap();

  SamplerConfig config_;
  Rng rng_;
  std::uint64_t countdown_ = 0;
  std::uint64_t events_seen_ = 0;
  std::uint64_t samples_kept_ = 0;
  std::uint64_t unattributed_ = 0;
  std::unordered_map<std::uint64_t, TagSamples> per_tag_;
};

}  // namespace hmpt::sample
