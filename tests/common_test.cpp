// Tests for hmpt::common — units, stats, tables, charts, rng.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "common/chart.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"

namespace hmpt {
namespace {

// ------------------------------------------------------------------- units
TEST(Units, ByteConstantsAreConsistent) {
  EXPECT_DOUBLE_EQ(KiB * 1024.0, MiB);
  EXPECT_DOUBLE_EQ(MiB * 1024.0, GiB);
  EXPECT_DOUBLE_EQ(GiB * 1024.0, TiB);
  EXPECT_DOUBLE_EQ(GB, 1e9);
}

TEST(Units, FormatBytesPicksSensibleSuffix) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(26.46 * GB), "26.5 GB");
  EXPECT_EQ(format_bytes(2.0 * 1e12), "2 TB");
}

TEST(Units, FormatBandwidthAndTime) {
  EXPECT_EQ(format_bandwidth(700.0 * GB), "700.0 GB/s");
  EXPECT_EQ(format_time(107e-9), "107 ns");
  EXPECT_EQ(format_time(1.5e-3), "1.5 ms");
}

TEST(Units, FormatPercent) {
  EXPECT_EQ(format_percent(0.696), "69.6 %");
  EXPECT_EQ(format_percent(0.5, 0), "50 %");
}

// ------------------------------------------------------------------- stats
TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10.0;
    (i < 20 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, PercentilesInterpolate) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-12);
  EXPECT_NEAR(s.percentile(90), 90.1, 1e-9);
}

TEST(Summary, PercentileOfEmptyThrows) {
  Summary s;
  EXPECT_THROW(s.percentile(50), Error);
}

TEST(Summary, Ci95ShrinksWithSamples) {
  Rng rng(5);
  Summary small, large;
  for (int i = 0; i < 10; ++i) small.add(rng.next_gaussian(1.0, 0.1));
  for (int i = 0; i < 1000; ++i) large.add(rng.next_gaussian(1.0, 0.1));
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(LinearFitTest, RecoversExactLine) {
  std::vector<double> x{1, 2, 3, 4, 5}, y;
  for (double v : x) y.push_back(3.0 + 2.0 * v);
  const auto fit = fit_linear(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFitTest, SizeMismatchThrows) {
  EXPECT_THROW(fit_linear({1.0, 2.0}, {1.0}), Error);
}

TEST(Means, HarmonicAndGeometric) {
  EXPECT_NEAR(harmonic_mean({1.0, 2.0, 4.0}), 3.0 / 1.75, 1e-12);
  EXPECT_NEAR(geometric_mean({1.0, 4.0, 16.0}), 4.0, 1e-12);
  EXPECT_THROW(harmonic_mean({1.0, -1.0}), Error);
  EXPECT_THROW(geometric_mean({}), Error);
}

// ------------------------------------------------------------------- table
TEST(TableTest, TextRenderingAligns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(TableTest, CsvEscapesSpecialCells) {
  Table t({"a", "b"});
  t.add_row({"x,y", "quote\"inside"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(TableTest, ArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TableTest, RowValuesFormatting) {
  Table t({"x", "y"});
  t.add_row_values({1.23456, 2.0}, 2);
  EXPECT_EQ(t.row(0)[0], "1.23");
  EXPECT_EQ(t.row(0)[1], "2.00");
  EXPECT_THROW(t.row(1), Error);
}

// ------------------------------------------------------------------- chart
TEST(ChartTest, RendersAllSeriesGlyphs) {
  ChartSeries a{"rising", 'r', {0, 1, 2}, {0, 1, 2}};
  ChartSeries b{"falling", 'f', {0, 1, 2}, {2, 1, 0}};
  ChartOptions options;
  options.title = "test chart";
  const std::string out = render_xy_chart({a, b}, options);
  EXPECT_NE(out.find('r'), std::string::npos);
  EXPECT_NE(out.find('f'), std::string::npos);
  EXPECT_NE(out.find("test chart"), std::string::npos);
  EXPECT_NE(out.find("rising"), std::string::npos);
}

TEST(ChartTest, HlinesDrawReferenceLines) {
  ChartSeries a{"pts", '*', {0.0, 1.0}, {1.0, 2.0}};
  ChartOptions options;
  options.hlines = {1.5};
  const std::string out = render_xy_chart({a}, options);
  EXPECT_NE(out.find('-'), std::string::npos);
}

TEST(ChartTest, MismatchedSeriesThrows) {
  ChartSeries bad{"bad", '*', {0.0, 1.0}, {1.0}};
  EXPECT_THROW(render_xy_chart({bad}, {}), Error);
}

TEST(ChartTest, DegenerateRangeStillRenders) {
  ChartSeries point{"p", '*', {1.0}, {1.0}};
  const std::string out = render_xy_chart({point}, {});
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(BarChartTest, SecondaryBarsShown) {
  std::vector<BarItem> items = {{"[0]", 1.6, 1.55}, {"[1]", 1.4, {}}};
  const std::string out = render_bar_chart(items, "bars", 30, 1.0);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('~'), std::string::npos);
  EXPECT_NE(out.find("(est)"), std::string::npos);
}

// --------------------------------------------------------------------- rng
TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all residues hit
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(RngTest, GaussianMomentsRoughlyCorrect) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.next_gaussian(2.0, 3.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.1);
  EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.next_exponential(0.5));
  EXPECT_NEAR(s.mean(), 2.0, 0.1);
}

// -------------------------------------------------------------- p2 quantile
// The P² estimator must agree with the sample-retaining Summary within a
// small relative tolerance across distribution shapes — that is the whole
// contract that lets the daemon's latency stats run in O(1) memory.
void expect_p2_tracks_summary(const std::vector<double>& samples,
                              double tolerance) {
  Summary summary;
  QuantileTracker tracker;
  for (const double x : samples) {
    summary.add(x);
    tracker.add(x);
  }
  const double spread = summary.max() - summary.min();
  EXPECT_NEAR(tracker.p50(), summary.percentile(50.0), tolerance * spread);
  EXPECT_NEAR(tracker.p95(), summary.percentile(95.0), tolerance * spread);
  EXPECT_NEAR(tracker.p99(), summary.percentile(99.0), tolerance * spread);
}

TEST(P2QuantileTest, FewerThanFiveSamplesIsExact) {
  P2Quantile p2(0.5);
  Summary summary;
  for (const double x : {3.0, 1.0, 4.0}) {
    p2.add(x);
    summary.add(x);
  }
  EXPECT_DOUBLE_EQ(p2.value(), summary.percentile(50.0));
}

TEST(P2QuantileTest, UniformSamplesMatchSummary) {
  Rng rng(42);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.next_double());
  expect_p2_tracks_summary(samples, 0.02);
}

TEST(P2QuantileTest, GaussianSamplesMatchSummary) {
  Rng rng(7);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i)
    samples.push_back(rng.next_gaussian(10.0, 2.0));
  expect_p2_tracks_summary(samples, 0.02);
}

TEST(P2QuantileTest, ExponentialSamplesMatchSummary) {
  Rng rng(99);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i)
    samples.push_back(rng.next_exponential(0.5));
  // Heavy right tail: p99 of an exponential is noisy even for Summary,
  // so allow a wider band than the smooth distributions.
  expect_p2_tracks_summary(samples, 0.05);
}

TEST(P2QuantileTest, BimodalSamplesMatchSummary) {
  Rng rng(5);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i)
    samples.push_back(rng.next_double() < 0.5
                          ? rng.next_gaussian(1.0, 0.1)
                          : rng.next_gaussian(9.0, 0.1));
  // The p50 of a balanced bimodal sits in the near-empty valley between
  // the modes, the hardest case for a five-marker sketch.
  expect_p2_tracks_summary(samples, 0.25);
}

TEST(P2QuantileTest, RejectsDegenerateQuantile) {
  EXPECT_THROW(P2Quantile(0.0), Error);
  EXPECT_THROW(P2Quantile(1.0), Error);
}

TEST(QuantileTrackerTest, TracksCountMeanMinMax) {
  QuantileTracker tracker;
  for (const double x : {4.0, 2.0, 6.0}) tracker.add(x);
  EXPECT_EQ(tracker.count(), 3u);
  EXPECT_DOUBLE_EQ(tracker.mean(), 4.0);
  EXPECT_DOUBLE_EQ(tracker.min(), 2.0);
  EXPECT_DOUBLE_EQ(tracker.max(), 6.0);
}

TEST(ConcurrentQuantileTrackerTest, ThreadedAddsAllLand) {
  ConcurrentQuantileTracker tracker;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&tracker, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kPerThread; ++i)
        tracker.add(rng.next_double());
    });
  for (auto& thread : threads) thread.join();
  const auto snapshot = tracker.snapshot();
  EXPECT_EQ(snapshot.count, static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_NEAR(snapshot.mean, 0.5, 0.02);
  EXPECT_NEAR(snapshot.p50, 0.5, 0.05);
  EXPECT_NEAR(snapshot.p95, 0.95, 0.05);
  EXPECT_GE(snapshot.max, snapshot.p99);
  EXPECT_LE(snapshot.min, snapshot.p50);
}

// ------------------------------------------------------------------- error
TEST(ErrorTest, RequireThrowsWithContext) {
  try {
    HMPT_REQUIRE(1 == 2, "math broke");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("math broke"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("common_test.cpp"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace hmpt
