// Tests for hmpt::topo — simulated NUMA topologies.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/units.h"
#include "topo/machine.h"

namespace hmpt::topo {
namespace {

TEST(PoolKindTest, RoundTripsThroughStrings) {
  EXPECT_STREQ(to_string(PoolKind::DDR), "DDR");
  EXPECT_STREQ(to_string(PoolKind::HBM), "HBM");
  EXPECT_STREQ(to_string(PoolKind::CXL), "CXL");
  EXPECT_EQ(pool_kind_from_string("DDR"), PoolKind::DDR);
  EXPECT_EQ(pool_kind_from_string("hbm"), PoolKind::HBM);
  EXPECT_EQ(pool_kind_from_string("cxl"), PoolKind::CXL);
  EXPECT_THROW(pool_kind_from_string("MRAM"), Error);
}

TEST(MemoryTiers, TierCountFollowsThePoolKindsPresent) {
  EXPECT_EQ(xeon_max_9468_duo_flat_snc4().num_memory_tiers(), 2);
  EXPECT_EQ(knl_like_flat_snc4().num_memory_tiers(), 2);
  EXPECT_EQ(two_pool_testbed().num_memory_tiers(), 2);
  EXPECT_EQ(three_pool_testbed().num_memory_tiers(), 3);
  EXPECT_EQ(cxl_tiered_xeon_max().num_memory_tiers(), 3);
  EXPECT_TRUE(cxl_tiered_xeon_max().has_kind(PoolKind::CXL));
  EXPECT_FALSE(two_pool_testbed().has_kind(PoolKind::CXL));
}

TEST(MemoryTiers, CxlTieredMachineExtendsTheSingleSocketPreset) {
  const auto machine = cxl_tiered_xeon_max();
  const auto base = xeon_max_9468_single_flat_snc4();
  EXPECT_EQ(machine.num_nodes(), base.num_nodes() + 1);
  EXPECT_EQ(machine.num_cores(), base.num_cores());
  const auto& cxl = machine.node(machine.num_nodes() - 1);
  EXPECT_EQ(cxl.pool.kind, PoolKind::CXL);
  EXPECT_EQ(cxl.num_cores, 0);
  EXPECT_EQ(cxl.tile, -1);  // socket-level device node
  EXPECT_DOUBLE_EQ(machine.capacity_of_kind(PoolKind::CXL), 128.0 * GiB);
  // CXL sits behind the root complex: further than any tile-local node.
  EXPECT_GT(machine.distance(0, cxl.id), machine.distance(0, 4));
}

TEST(XeonMaxDuo, MatchesFig1Topology) {
  const auto machine = xeon_max_9468_duo_flat_snc4();
  EXPECT_EQ(machine.num_sockets(), 2);
  EXPECT_EQ(machine.num_tiles(), 8);
  EXPECT_EQ(machine.tiles_per_socket(), 4);
  EXPECT_EQ(machine.num_nodes(), 16);
  EXPECT_EQ(machine.num_cores(), 96);
  EXPECT_EQ(machine.cores_per_tile(), 12);
}

TEST(XeonMaxDuo, NodeNumberingFollowsFig1) {
  // Fig. 1: DDR nodes 0-7 carry cores; HBM nodes 8-15 are memory-only.
  const auto machine = xeon_max_9468_duo_flat_snc4();
  for (int n = 0; n < 8; ++n) {
    EXPECT_EQ(machine.node(n).pool.kind, PoolKind::DDR) << n;
    EXPECT_EQ(machine.node(n).num_cores, 12) << n;
  }
  for (int n = 8; n < 16; ++n) {
    EXPECT_EQ(machine.node(n).pool.kind, PoolKind::HBM) << n;
    EXPECT_EQ(machine.node(n).num_cores, 0) << n;
  }
}

TEST(XeonMaxDuo, TilePairsDdrWithHbm) {
  const auto machine = xeon_max_9468_duo_flat_snc4();
  for (const auto& tile : machine.tiles()) {
    EXPECT_EQ(machine.node(tile.ddr_node).pool.kind, PoolKind::DDR);
    EXPECT_EQ(machine.node(tile.hbm_node).pool.kind, PoolKind::HBM);
    EXPECT_EQ(machine.node(tile.ddr_node).tile, tile.id);
    EXPECT_EQ(machine.node(tile.hbm_node).tile, tile.id);
    EXPECT_EQ(tile.hbm_node, tile.ddr_node + 8);
  }
}

TEST(XeonMaxDuo, CapacitiesMatchPaperSpecs) {
  const auto machine = xeon_max_9468_duo_flat_snc4();
  // Per socket: 4 x 16 GB HBM and 4 x 32 GB DDR.
  EXPECT_DOUBLE_EQ(machine.capacity_of_kind(PoolKind::HBM, 0), 64.0 * GiB);
  EXPECT_DOUBLE_EQ(machine.capacity_of_kind(PoolKind::DDR, 0), 128.0 * GiB);
  EXPECT_DOUBLE_EQ(machine.capacity_of_kind(PoolKind::HBM), 128.0 * GiB);
  EXPECT_DOUBLE_EQ(machine.capacity_of_kind(PoolKind::DDR), 256.0 * GiB);
}

TEST(XeonMaxDuo, PeakBandwidthsMatchPaperSpecs) {
  const auto machine = xeon_max_9468_duo_flat_snc4();
  // 409.6 GB/s HBM and 76.8 GB/s DDR per tile (Sec. I-A).
  EXPECT_NEAR(machine.peak_bandwidth_of_kind(PoolKind::HBM, 0),
              4.0 * 409.6 * GB, 1.0);
  EXPECT_NEAR(machine.peak_bandwidth_of_kind(PoolKind::DDR, 0),
              4.0 * 76.8 * GB, 1.0);
}

TEST(XeonMaxDuo, NodesOfKindFiltersBySocket) {
  const auto machine = xeon_max_9468_duo_flat_snc4();
  const auto hbm0 = machine.nodes_of_kind(PoolKind::HBM, 0);
  ASSERT_EQ(hbm0.size(), 4u);
  for (int n : hbm0) EXPECT_EQ(machine.node(n).socket, 0);
  EXPECT_EQ(machine.nodes_of_kind(PoolKind::DDR).size(), 8u);
}

TEST(XeonMaxDuo, DistancesAreSlitLike) {
  const auto machine = xeon_max_9468_duo_flat_snc4();
  EXPECT_EQ(machine.distance(0, 0), 10);   // local
  EXPECT_EQ(machine.distance(0, 8), 12);   // same-tile HBM
  EXPECT_EQ(machine.distance(0, 1), 14);   // same socket, other tile
  EXPECT_EQ(machine.distance(0, 4), 21);   // remote socket DDR
  EXPECT_EQ(machine.distance(0, 12), 23);  // remote socket HBM
}

TEST(XeonMaxSingle, IsHalfTheDuo) {
  const auto machine = xeon_max_9468_single_flat_snc4();
  EXPECT_EQ(machine.num_sockets(), 1);
  EXPECT_EQ(machine.num_nodes(), 8);
  EXPECT_EQ(machine.num_cores(), 48);
  EXPECT_DOUBLE_EQ(machine.capacity_of_kind(PoolKind::HBM), 64.0 * GiB);
}

TEST(TwoPoolTestbed, HasConfigurableCapacities) {
  const auto machine = two_pool_testbed(10.0 * GiB, 2.0 * GiB);
  EXPECT_EQ(machine.num_nodes(), 2);
  EXPECT_DOUBLE_EQ(machine.capacity_of_kind(PoolKind::DDR), 10.0 * GiB);
  EXPECT_DOUBLE_EQ(machine.capacity_of_kind(PoolKind::HBM), 2.0 * GiB);
}

TEST(MachineTest, OutOfRangeAccessThrows) {
  const auto machine = two_pool_testbed();
  EXPECT_THROW(machine.node(-1), Error);
  EXPECT_THROW(machine.node(2), Error);
  EXPECT_THROW(machine.tile(1), Error);
}

TEST(MachineTest, DescribeMentionsEveryNode) {
  const auto machine = xeon_max_9468_single_flat_snc4();
  const std::string text = machine.describe();
  for (int n = 0; n < machine.num_nodes(); ++n)
    EXPECT_NE(text.find("node " + std::to_string(n)), std::string::npos);
}

}  // namespace
}  // namespace hmpt::topo
