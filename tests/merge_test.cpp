// Tests for campaign sharding and the merge layer: shard-spec parsing,
// partition disjointness/coverage on fuzzed matrices, shard-manifest
// round trips, merge validation (campaign fingerprint, shard count,
// coverage), conflicting-outcome detection, and the headline guarantee —
// N merged shards reproduce the unsharded artefacts byte for byte, in
// either store layout (dir or packed) and across lossless dir<->packed
// conversions.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <random>
#include <set>
#include <sstream>

#include "campaign/aggregate.h"
#include "campaign/campaign.h"
#include "campaign/merge.h"
#include "workloads/app_models.h"
#include "workloads/trace_io.h"

namespace hmpt::campaign {
namespace {

namespace fs = std::filesystem;

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::stringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

/// A fresh directory per test, removed on scope exit.
class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ------------------------------------------------------------- shard spec

TEST(ShardSpecTest, ParsesAndRejects) {
  EXPECT_EQ(parse_shard_spec("1/1").index, 1);
  EXPECT_EQ(parse_shard_spec("1/1").count, 1);
  EXPECT_TRUE(parse_shard_spec("1/1").is_whole());
  const auto two_of_three = parse_shard_spec("2/3");
  EXPECT_EQ(two_of_three.index, 2);
  EXPECT_EQ(two_of_three.count, 3);
  EXPECT_FALSE(two_of_three.is_whole());
  EXPECT_EQ(two_of_three.to_string(), "2/3");

  for (const char* bad :
       {"", "3", "0/3", "4/3", "-1/3", "1/0", "1/-2", "a/b", "1/3x", "/3",
        "1/"})
    EXPECT_THROW(parse_shard_spec(bad), Error) << bad;
}

// -------------------------------------------------------------- partition

TEST(ShardPartitionTest, DisjointnessAndCoverageOnFuzzedMatrices) {
  const std::vector<std::string> workloads = {
      "mg", "bt", "lu", "sp", "ua", "is", "kwave",
      "stream:array_gb=1", "pointer-chase:window_gb=1", "random-sum"};
  const std::vector<std::string> platforms = {"xeon-max", "xeon-max-1s",
                                              "spr-cxl", "knl"};
  const std::vector<std::string> strategies = {"exhaustive", "estimator",
                                               "online"};

  std::mt19937 rng(20260726);
  const auto pick = [&](const std::vector<std::string>& axis, int max_n) {
    std::vector<std::string> out;
    const int n =
        1 + static_cast<int>(rng() % static_cast<unsigned>(max_n));
    std::sample(axis.begin(), axis.end(), std::back_inserter(out),
                static_cast<std::size_t>(n), rng);
    return out;
  };

  for (int trial = 0; trial < 12; ++trial) {
    ScenarioMatrix matrix;
    for (const auto& w : pick(workloads, 4))
      matrix.workloads.push_back(parse_workload_spec(w));
    matrix.platforms = pick(platforms, 3);
    matrix.strategies = pick(strategies, 3);
    if (rng() % 2) matrix.budgets_gb = {0.0, 16.0};
    matrix.repetitions = 1 + static_cast<int>(rng() % 3);
    const auto full = matrix.expand();

    std::set<std::string> full_fps;
    for (const auto& s : full) full_fps.insert(s.fingerprint());

    // Including a count larger than the scenario list: trailing shards
    // are legitimately empty and the union must still be exact.
    for (const int count : {1, 2, 3, 5, static_cast<int>(full.size()) + 2}) {
      std::set<std::string> seen;
      std::size_t total = 0;
      std::size_t min_size = full.size();
      std::size_t max_size = 0;
      for (int index = 1; index <= count; ++index) {
        const auto slice = shard_scenarios(full, {index, count});
        min_size = std::min(min_size, slice.size());
        max_size = std::max(max_size, slice.size());
        total += slice.size();
        std::string previous;
        for (const auto& s : slice) {
          // Disjoint across shards...
          EXPECT_TRUE(seen.insert(s.fingerprint()).second)
              << "duplicate " << s.fingerprint() << " at count " << count;
          // ...and each slice is in fingerprint order.
          EXPECT_LT(previous, s.fingerprint());
          previous = s.fingerprint();
        }
      }
      // The union of the N shards is exactly the full scenario list.
      EXPECT_EQ(total, full.size()) << "count " << count;
      EXPECT_EQ(seen, full_fps) << "count " << count;
      // Round-robin dealing balances to within one scenario.
      EXPECT_LE(max_size - min_size, 1u) << "count " << count;
    }
  }
}

TEST(ShardPartitionTest, StableAcrossDeclarationOrderAndAliases) {
  ScenarioMatrix a;
  a.workloads = {parse_workload_spec("mg"), parse_workload_spec("bt")};
  a.platforms = {"xeon-max", "spr-cxl"};
  a.strategies = {"estimator", "online"};

  // Same campaign, different declaration order and an alias spelling.
  ScenarioMatrix b;
  b.workloads = {parse_workload_spec("bt"), parse_workload_spec("mg")};
  b.platforms = {"spr-cxl", "spr"};
  b.strategies = {"online", "estimator"};

  for (int index = 1; index <= 3; ++index) {
    const auto slice_a = shard_scenarios(a.expand(), {index, 3});
    const auto slice_b = shard_scenarios(b.expand(), {index, 3});
    ASSERT_EQ(slice_a.size(), slice_b.size());
    for (std::size_t i = 0; i < slice_a.size(); ++i)
      EXPECT_EQ(slice_a[i].fingerprint(), slice_b[i].fingerprint());
  }
}

TEST(CampaignFingerprintTest, HashesTheOrderedScenarioList) {
  ScenarioMatrix matrix;
  matrix.workloads = {parse_workload_spec("mg"), parse_workload_spec("bt")};
  matrix.platforms = {"xeon-max"};
  matrix.strategies = {"estimator"};
  const auto scenarios = matrix.expand();

  const std::string fp = campaign_fingerprint(scenarios);
  EXPECT_EQ(fp.size(), 16u);
  EXPECT_EQ(fp, campaign_fingerprint(scenarios));  // deterministic

  // Order is part of the identity (artefacts are matrix-ordered)...
  auto reversed = scenarios;
  std::reverse(reversed.begin(), reversed.end());
  EXPECT_NE(campaign_fingerprint(reversed), fp);
  // ...and so is every scenario.
  auto shrunk = scenarios;
  shrunk.pop_back();
  EXPECT_NE(campaign_fingerprint(shrunk), fp);
}

// --------------------------------------------------------------- manifest

TEST(ShardManifestTest, JsonRoundTripsLosslessly) {
  ShardManifest manifest;
  manifest.campaign = "00112233aabbccdd";
  manifest.shard = {2, 3};
  manifest.campaign_order = {"aaaa", "bbbb", "cccc"};

  ShardManifest::Entry ok;
  ok.fingerprint = "bbbb";
  ok.scenario.workload = parse_workload_spec("mg");
  ok.scenario.platform = "xeon-max";
  ok.scenario.strategy = "estimator";
  ok.status = ShardEntryStatus::Complete;
  ShardManifest::Entry failed;
  failed.fingerprint = "cccc";
  failed.scenario.workload =
      parse_workload_spec("recorded:path=/nonexistent.profile");
  failed.scenario.platform = "xeon-max";
  failed.scenario.strategy = "online";
  failed.status = ShardEntryStatus::Failed;
  failed.error = "cannot read profile";
  manifest.entries = {ok, failed};

  const auto back = ShardManifest::from_json(manifest.to_json());
  EXPECT_EQ(back.to_json().dump(), manifest.to_json().dump());
  EXPECT_EQ(back.shard.index, 2);
  EXPECT_EQ(back.shard.count, 3);
  EXPECT_EQ(back.entries[1].error, "cannot read profile");

  // Save/load round trip through the store directory.
  TempDir dir("hmpt_manifest_roundtrip");
  manifest.save(dir.path());
  const auto loaded = ShardManifest::load(dir.path());
  EXPECT_EQ(loaded.to_json().dump(), manifest.to_json().dump());

  // Missing and corrupt manifests fail loudly.
  TempDir empty("hmpt_manifest_missing");
  EXPECT_THROW(ShardManifest::load(empty.path()), Error);
  {
    fs::create_directories(empty.path());
    std::ofstream os(ShardManifest::path_in(empty.path()));
    os << "{ not json";
  }
  EXPECT_THROW(ShardManifest::load(empty.path()), Error);
}

TEST(ShardManifestTest, MakeManifestRefusesDryRuns) {
  ScenarioMatrix matrix;
  matrix.workloads = {parse_workload_spec("mg")};
  matrix.platforms = {"xeon-max"};
  matrix.strategies = {"estimator"};
  const auto scenarios = matrix.expand();

  CampaignResult planned;
  planned.runs.resize(1);
  planned.runs[0].scenario = scenarios[0];
  planned.runs[0].status = ScenarioRun::Status::Planned;
  EXPECT_THROW(make_manifest(scenarios, {1, 1}, planned), Error);
}

// ------------------------------------------------------------------ merge

/// Shared fixture: a small real campaign (4 scenarios, reps 1) run whole
/// and as shards, with every store under one temp root.
class MergeTest : public ::testing::Test {
 protected:
  static std::vector<Scenario> scenarios() {
    ScenarioMatrix matrix;
    matrix.workloads = {parse_workload_spec("mg"),
                        parse_workload_spec("stream:array_gb=1,iterations=2")};
    matrix.platforms = {"xeon-max"};
    matrix.strategies = {"estimator", "online"};
    matrix.repetitions = 1;
    return matrix.expand();
  }

  /// Run one shard of the campaign into `dir` and leave its manifest.
  static CampaignResult run_shard(const std::vector<Scenario>& full,
                                  const ShardSpec& shard,
                                  const std::string& dir,
                                  bool keep_going = false,
                                  StoreFormat format = StoreFormat::Dir) {
    CampaignOptions options;
    options.output_dir = dir;
    options.keep_going = keep_going;
    options.store_format = format;
    const auto result =
        CampaignRunner(options).run(shard_scenarios(full, shard));
    make_manifest(full, shard, result).save(dir);
    return result;
  }
};

TEST_F(MergeTest, ThreeShardsReproduceUnshardedArtifactsByteForByte) {
  TempDir root("hmpt_merge_bytes");
  const auto full = scenarios();

  // Unsharded reference run (matrix order, as hmpt_campaign runs it).
  CampaignOptions whole;
  whole.output_dir = root.path() + "/whole";
  const auto cold = CampaignRunner(whole).run(full);
  ASSERT_TRUE(cold.ok());
  write_artifacts(cold, whole.output_dir);

  std::vector<std::string> shard_dirs;
  for (int i = 1; i <= 3; ++i) {
    shard_dirs.push_back(root.path() + "/shard" + std::to_string(i));
    ASSERT_TRUE(run_shard(full, {i, 3}, shard_dirs.back()).ok());
  }

  MergeStats stats;
  const auto merged =
      merge_shards(shard_dirs, root.path() + "/merged", &stats);
  EXPECT_EQ(stats.shards, 3);
  EXPECT_EQ(stats.scenarios, static_cast<int>(full.size()));
  EXPECT_EQ(stats.outcomes_merged, static_cast<int>(full.size()));
  EXPECT_EQ(stats.campaign, campaign_fingerprint(full));
  EXPECT_EQ(merged.cached, static_cast<int>(full.size()));
  EXPECT_EQ(merged.failed, 0);

  // The acceptance criterion: byte-identical deterministic artefacts.
  write_artifacts(merged, root.path() + "/merged");
  EXPECT_EQ(slurp(root.path() + "/merged/runs.csv"),
            slurp(whole.output_dir + "/runs.csv"));
  EXPECT_EQ(slurp(root.path() + "/merged/summary.json"),
            slurp(whole.output_dir + "/summary.json"));

  // The merged store holds every outcome file, byte-identical to the
  // unsharded store's copy (content addressing is honest).
  for (const auto& s : full) {
    const std::string name = s.fingerprint() + ".json";
    EXPECT_EQ(slurp(root.path() + "/merged/outcomes/" + name),
              slurp(whole.output_dir + "/outcomes/" + name));
  }

  // A single unsharded store (1/1 manifest) merges too — artefact
  // regeneration from outcomes alone.
  make_manifest(full, {1, 1}, cold).save(whole.output_dir);
  const auto regenerated =
      merge_shards({whole.output_dir}, root.path() + "/regen");
  write_artifacts(regenerated, root.path() + "/regen");
  EXPECT_EQ(slurp(root.path() + "/regen/runs.csv"),
            slurp(whole.output_dir + "/runs.csv"));
  EXPECT_EQ(slurp(root.path() + "/regen/summary.json"),
            slurp(whole.output_dir + "/summary.json"));
}

TEST_F(MergeTest, MixedFormatShardsMergeIntoEitherFormatLosslessly) {
  TempDir root("hmpt_merge_formats");
  const auto full = scenarios();

  // Unsharded dir-format reference.
  CampaignOptions whole;
  whole.output_dir = root.path() + "/whole";
  const auto cold = CampaignRunner(whole).run(full);
  ASSERT_TRUE(cold.ok());
  write_artifacts(cold, whole.output_dir);

  // Shards in a mix of store layouts, as a fleet with hosts on different
  // versions would produce them; auto-detection makes the mix invisible.
  const StoreFormat shard_formats[] = {StoreFormat::Packed, StoreFormat::Dir,
                                       StoreFormat::Packed};
  std::vector<std::string> shard_dirs;
  for (int i = 1; i <= 3; ++i) {
    shard_dirs.push_back(root.path() + "/shard" + std::to_string(i));
    ASSERT_TRUE(run_shard(full, {i, 3}, shard_dirs.back(), false,
                          shard_formats[i - 1])
                    .ok());
  }

  // Merge the same shards into both output layouts.
  for (const auto format : {StoreFormat::Dir, StoreFormat::Packed}) {
    const std::string out =
        root.path() + (format == StoreFormat::Dir ? "/merged-dir"
                                                  : "/merged-packed");
    MergeStats stats;
    const auto merged = merge_shards(shard_dirs, out, &stats, format);
    EXPECT_EQ(stats.outcomes_merged, static_cast<int>(full.size()));
    write_artifacts(merged, out);
    // Byte-identical artefacts regardless of any store layout involved.
    EXPECT_EQ(slurp(out + "/runs.csv"),
              slurp(whole.output_dir + "/runs.csv"));
    EXPECT_EQ(slurp(out + "/summary.json"),
              slurp(whole.output_dir + "/summary.json"));
  }
  EXPECT_TRUE(fs::exists(root.path() + "/merged-packed/outcomes.log"));

  // Lossless cross-conversion: both outputs and the reference store hold
  // the identical record set, byte for byte.
  const auto reference =
      OutcomeStore::open_existing(whole.output_dir).load_all_payloads();
  ASSERT_EQ(reference.size(), full.size());
  EXPECT_EQ(OutcomeStore::open_existing(root.path() + "/merged-dir")
                .load_all_payloads(),
            reference);
  EXPECT_EQ(OutcomeStore::open_existing(root.path() + "/merged-packed")
                .load_all_payloads(),
            reference);
}

TEST_F(MergeTest, ThousandScenarioSyntheticTwinsMergeByteIdentically) {
  TempDir root("hmpt_merge_thousand");

  // A 1000-scenario campaign with synthetic (but well-formed) outcomes:
  // big enough to exercise the packed index and bulk-load paths, cheap
  // enough for a unit test because nothing is actually tuned.
  std::vector<Scenario> full;
  for (int i = 0; i < 1000; ++i) {
    Scenario s;
    s.workload = parse_workload_spec("mg");
    s.platform = "xeon-max";
    s.strategy = "estimator";
    s.repetitions = i + 1;  // 1000 distinct fingerprints
    full.push_back(s);
  }

  const OutcomeStore dir_twin(root.path() + "/dir", StoreFormat::Dir);
  const OutcomeStore packed_twin(root.path() + "/packed",
                                 StoreFormat::Packed);
  CampaignResult result;
  for (int i = 0; i < 1000; ++i) {
    const auto& s = full[static_cast<std::size_t>(i)];
    tuner::TuningOutcome o;
    o.strategy = s.strategy;
    o.workload = s.workload.name;
    o.num_groups = 1 + i % 5;
    o.num_tiers = 2;
    o.chosen_mask = static_cast<unsigned>(i % 31);
    o.baseline_time = 10.0;
    o.chosen_time = 10.0 / (1.0 + (i % 97) / 31.0);
    o.speedup = 1.0 + (i % 97) / 31.0;
    o.hbm_bytes = static_cast<double>(i) * 1e6;
    o.hbm_usage = (i % 100) / 100.0;
    o.configs_measured = 1 + i % 7;
    dir_twin.save(s, o);
    packed_twin.save(s, o);

    ScenarioRun run;
    run.scenario = s;
    run.fingerprint = s.fingerprint();
    run.status = ScenarioRun::Status::Executed;
    run.outcome = o;
    result.runs.push_back(std::move(run));
    ++result.executed;
  }
  make_manifest(full, {1, 1}, result).save(root.path() + "/dir");
  make_manifest(full, {1, 1}, result).save(root.path() + "/packed");

  // Cross-convert each twin through the merge path.
  const auto from_dir = merge_shards({root.path() + "/dir"},
                                     root.path() + "/dir-to-packed", nullptr,
                                     StoreFormat::Packed);
  const auto from_packed = merge_shards({root.path() + "/packed"},
                                        root.path() + "/packed-to-dir",
                                        nullptr, StoreFormat::Dir);

  // The converted packed log is byte-identical to the natively written
  // one (same records, same campaign order, same framing), and every
  // converted dir file matches its native twin.
  EXPECT_EQ(slurp(root.path() + "/dir-to-packed/outcomes.log"),
            slurp(root.path() + "/packed/outcomes.log"));
  for (const auto& s : full) {
    const std::string name = "/outcomes/" + s.fingerprint() + ".json";
    EXPECT_EQ(slurp(root.path() + "/packed-to-dir" + name),
              slurp(root.path() + "/dir" + name));
  }

  // And the artefacts derived from either side agree byte for byte.
  write_artifacts(from_dir, root.path() + "/dir-to-packed");
  write_artifacts(from_packed, root.path() + "/packed-to-dir");
  EXPECT_EQ(slurp(root.path() + "/dir-to-packed/runs.csv"),
            slurp(root.path() + "/packed-to-dir/runs.csv"));
  EXPECT_EQ(slurp(root.path() + "/dir-to-packed/summary.json"),
            slurp(root.path() + "/packed-to-dir/summary.json"));
  ASSERT_EQ(from_dir.runs.size(), 1000u);
  EXPECT_EQ(OutcomeStore::open_existing(root.path() + "/dir-to-packed")
                .load_all_payloads(),
            OutcomeStore::open_existing(root.path() + "/packed-to-dir")
                .load_all_payloads());
}

TEST_F(MergeTest, ValidatesManifestsBeforeTouchingAnything) {
  TempDir root("hmpt_merge_validate");
  const auto full = scenarios();

  std::vector<std::string> shard_dirs;
  for (int i = 1; i <= 2; ++i) {
    shard_dirs.push_back(root.path() + "/shard" + std::to_string(i));
    ASSERT_TRUE(run_shard(full, {i, 2}, shard_dirs.back()).ok());
  }

  // Not enough shards: the campaign declares 2, one given.
  EXPECT_THROW(merge_shards({shard_dirs[0]}, root.path() + "/m1"), Error);
  // The same shard twice: duplicate index.
  EXPECT_THROW(
      merge_shards({shard_dirs[0], shard_dirs[0]}, root.path() + "/m2"),
      Error);
  // A directory without a manifest.
  fs::create_directories(root.path() + "/not_a_store");
  EXPECT_THROW(merge_shards({shard_dirs[0], root.path() + "/not_a_store"},
                            root.path() + "/m3"),
               Error);

  // A shard of a *different* campaign (different reps => different
  // fingerprints): campaign fingerprint mismatch.
  ScenarioMatrix other_matrix;
  other_matrix.workloads = {parse_workload_spec("mg"),
                            parse_workload_spec(
                                "stream:array_gb=1,iterations=2")};
  other_matrix.platforms = {"xeon-max"};
  other_matrix.strategies = {"estimator", "online"};
  other_matrix.repetitions = 2;
  const auto other = other_matrix.expand();
  const std::string foreign = root.path() + "/foreign";
  ASSERT_TRUE(run_shard(other, {2, 2}, foreign).ok());
  EXPECT_THROW(merge_shards({shard_dirs[0], foreign}, root.path() + "/m4"),
               Error);
}

TEST_F(MergeTest, DetectsConflictingOutcomesForTheSameFingerprint) {
  TempDir root("hmpt_merge_conflict");
  const auto full = scenarios();

  std::vector<std::string> shard_dirs;
  for (int i = 1; i <= 2; ++i) {
    shard_dirs.push_back(root.path() + "/shard" + std::to_string(i));
    ASSERT_TRUE(run_shard(full, {i, 2}, shard_dirs.back()).ok());
  }

  // Plant a *different* outcome for a shard-1 fingerprint inside shard
  // 2's store: same content address, different bytes. The union must
  // fail loudly — this is either a determinism bug or a foreign store,
  // and silently preferring either copy would corrupt the campaign.
  std::string victim;
  for (const auto& file :
       fs::directory_iterator(shard_dirs[0] + "/outcomes"))
    if (file.path().extension() == ".json") {
      victim = file.path().filename().string();
      break;
    }
  ASSERT_FALSE(victim.empty());
  std::string tampered = slurp(shard_dirs[0] + "/outcomes/" + victim);
  tampered += " ";  // same JSON meaning, different bytes
  {
    std::ofstream os(shard_dirs[1] + "/outcomes/" + victim,
                     std::ios::binary);
    os << tampered;
  }

  try {
    merge_shards(shard_dirs, root.path() + "/merged");
    FAIL() << "conflicting outcomes must not merge";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("conflicting outcomes"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(MergeTest, OverlappingIdenticalCoverageMergesByteForByte) {
  TempDir root("hmpt_merge_overlap");
  const auto full = scenarios();

  // Unsharded reference.
  CampaignOptions whole;
  whole.output_dir = root.path() + "/whole";
  const auto cold = CampaignRunner(whole).run(full);
  ASSERT_TRUE(cold.ok());
  write_artifacts(cold, whole.output_dir);

  std::vector<std::string> shard_dirs;
  for (int i = 1; i <= 2; ++i) {
    shard_dirs.push_back(root.path() + "/shard" + std::to_string(i));
    ASSERT_TRUE(run_shard(full, {i, 2}, shard_dirs.back()).ok());
  }

  // Simulate a steal: shard 1 also executes (and claims) a scenario that
  // shard 2 owns — duplicate coverage, identical bytes, exactly what a
  // thief's --progress-manifest leaves behind when the victim finished
  // after all.
  const auto stolen = shard_scenarios(full, {2, 2}).front();
  CampaignOptions dup;
  dup.output_dir = shard_dirs[0];
  const auto dup_run = CampaignRunner(dup).run({stolen});
  ASSERT_TRUE(dup_run.ok());
  ManifestProgress progress(full, {1, 2}, shard_dirs[0]);
  progress.record(dup_run.runs[0]);

  MergeStats stats;
  const auto merged =
      merge_shards(shard_dirs, root.path() + "/merged", &stats);
  EXPECT_EQ(stats.overlapping, 1);
  EXPECT_EQ(stats.outcomes_merged, static_cast<int>(full.size()));
  EXPECT_EQ(merged.cached, static_cast<int>(full.size()));

  write_artifacts(merged, root.path() + "/merged");
  EXPECT_EQ(slurp(root.path() + "/merged/runs.csv"),
            slurp(whole.output_dir + "/runs.csv"));
  EXPECT_EQ(slurp(root.path() + "/merged/summary.json"),
            slurp(whole.output_dir + "/summary.json"));
}

TEST_F(MergeTest, OverlappingClaimsWithDifferingBytesStillFailLoudly) {
  TempDir root("hmpt_merge_overlap_conflict");
  const auto full = scenarios();

  std::vector<std::string> shard_dirs;
  for (int i = 1; i <= 2; ++i) {
    shard_dirs.push_back(root.path() + "/shard" + std::to_string(i));
    ASSERT_TRUE(run_shard(full, {i, 2}, shard_dirs.back()).ok());
  }

  // The same steal as above, but the duplicate copy's bytes are tampered
  // with after the fact: overlap tolerance must not weaken the
  // conflicting-outcome check.
  const auto stolen = shard_scenarios(full, {2, 2}).front();
  CampaignOptions dup;
  dup.output_dir = shard_dirs[0];
  const auto dup_run = CampaignRunner(dup).run({stolen});
  ASSERT_TRUE(dup_run.ok());
  ManifestProgress progress(full, {1, 2}, shard_dirs[0]);
  progress.record(dup_run.runs[0]);
  const std::string copy =
      shard_dirs[0] + "/outcomes/" + stolen.fingerprint() + ".json";
  std::string tampered = slurp(copy);
  tampered += " ";
  {
    std::ofstream os(copy, std::ios::binary);
    os << tampered;
  }

  try {
    merge_shards(shard_dirs, root.path() + "/merged");
    FAIL() << "overlapping claims with differing bytes must not merge";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("conflicting outcomes"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(MergeTest, CompleteClaimBeatsFailedClaimOnOverlap) {
  TempDir root("hmpt_merge_overlap_failed");
  const auto full = scenarios();

  CampaignOptions whole;
  whole.output_dir = root.path() + "/whole";
  const auto cold = CampaignRunner(whole).run(full);
  ASSERT_TRUE(cold.ok());
  write_artifacts(cold, whole.output_dir);

  std::vector<std::string> shard_dirs;
  for (int i = 1; i <= 2; ++i) {
    shard_dirs.push_back(root.path() + "/shard" + std::to_string(i));
    ASSERT_TRUE(run_shard(full, {i, 2}, shard_dirs.back()).ok());
  }

  // A victim recorded a failure for a scenario a thief then completed
  // (the victim's attempt hit a transient error; the re-deal succeeded).
  // Append the failed claim to shard 1's manifest for a scenario shard 2
  // completed — whichever direction the merge scans, Complete must own
  // the scenario and the artefacts must match the unsharded run.
  const auto stolen = shard_scenarios(full, {2, 2}).front();
  auto manifest = ShardManifest::load(shard_dirs[0]);
  ShardManifest::Entry failed_claim;
  failed_claim.fingerprint = stolen.fingerprint();
  failed_claim.scenario = stolen;
  failed_claim.status = ShardEntryStatus::Failed;
  failed_claim.error = "induced transient failure";
  manifest.entries.push_back(failed_claim);
  manifest.save(shard_dirs[0]);

  MergeStats stats;
  const auto merged =
      merge_shards(shard_dirs, root.path() + "/merged", &stats);
  EXPECT_EQ(stats.overlapping, 1);
  EXPECT_EQ(merged.failed, 0);
  write_artifacts(merged, root.path() + "/merged");
  EXPECT_EQ(slurp(root.path() + "/merged/runs.csv"),
            slurp(whole.output_dir + "/runs.csv"));
  EXPECT_EQ(slurp(root.path() + "/merged/summary.json"),
            slurp(whole.output_dir + "/summary.json"));
}

TEST_F(MergeTest, ManifestProgressUnionsAcrossGenerationsAndUpgradesFailures) {
  TempDir dir("hmpt_manifest_progress");
  const auto full = scenarios();
  fs::create_directories(dir.path());

  // Generation 1 records one completion and one failure, incrementally —
  // the manifest on disk is valid after every record.
  {
    ManifestProgress progress(full, {1, 1}, dir.path());
    EXPECT_EQ(ShardManifest::load(dir.path()).entries.size(), 0u);

    ScenarioRun done;
    done.scenario = full[0];
    done.fingerprint = full[0].fingerprint();
    done.status = ScenarioRun::Status::Executed;
    progress.record(done);
    EXPECT_EQ(ShardManifest::load(dir.path()).entries.size(), 1u);

    ScenarioRun failed;
    failed.scenario = full[1];
    failed.fingerprint = full[1].fingerprint();
    failed.status = ScenarioRun::Status::Failed;
    failed.error = "boom";
    progress.record(failed);
    const auto on_disk = ShardManifest::load(dir.path());
    ASSERT_EQ(on_disk.entries.size(), 2u);
    EXPECT_EQ(on_disk.entries[1].status, ShardEntryStatus::Failed);
    EXPECT_EQ(on_disk.entries[1].error, "boom");

    // Dry-run entries have no durable state to record.
    ScenarioRun planned;
    planned.scenario = full[2];
    planned.status = ScenarioRun::Status::Planned;
    EXPECT_THROW(progress.record(planned), Error);
  }

  // Generation 2 (a relaunch on the same store) unions with generation
  // 1's entries and upgrades the recorded failure to Complete when the
  // retry succeeds.
  {
    ManifestProgress progress(full, {1, 1}, dir.path());
    EXPECT_EQ(progress.manifest().entries.size(), 2u);
    ScenarioRun retried;
    retried.scenario = full[1];
    retried.fingerprint = full[1].fingerprint();
    retried.status = ScenarioRun::Status::Cached;
    progress.record(retried);
    const auto on_disk = ShardManifest::load(dir.path());
    ASSERT_EQ(on_disk.entries.size(), 2u);
    EXPECT_EQ(on_disk.entries[1].status, ShardEntryStatus::Complete);
  }

  // A stale manifest from a *different* campaign is discarded, not
  // unioned: the new generation starts fresh.
  {
    auto other = scenarios();
    other.pop_back();
    ManifestProgress progress(other, {1, 1}, dir.path());
    EXPECT_EQ(progress.manifest().entries.size(), 0u);
  }
}

TEST_F(MergeTest, StoredFingerprintsSurviveProfileChangesOnTheMergeHost) {
  TempDir root("hmpt_merge_recorded");

  // A campaign over a recorded profile: its fingerprint hashes the
  // profile *contents*, which exist at run time...
  const std::string profile = root.path() + "/run.profile";
  fs::create_directories(root.path());
  {
    auto sim = sim::MachineSimulator::paper_platform();
    workloads::save_workload(profile,
                             *workloads::make_mg_model(sim).workload);
  }
  ScenarioMatrix matrix;
  matrix.workloads = {parse_workload_spec("recorded:path=" + profile)};
  matrix.platforms = {"xeon-max"};
  matrix.strategies = {"estimator", "online"};
  matrix.repetitions = 1;
  const auto full = matrix.expand();

  CampaignOptions whole;
  whole.output_dir = root.path() + "/whole";
  auto cold = CampaignRunner(whole).run(full);
  ASSERT_TRUE(cold.ok());
  write_artifacts(cold, whole.output_dir);

  std::vector<std::string> shard_dirs;
  for (int i = 1; i <= 2; ++i) {
    shard_dirs.push_back(root.path() + "/shard" + std::to_string(i));
    ASSERT_TRUE(run_shard(full, {i, 2}, shard_dirs.back()).ok());
  }

  // ...but is gone by the time the merge runs (a different host, or the
  // profile was re-recorded). Manifests and run results carry the
  // fingerprints as stored strings, so the merge still validates and
  // the merged artefacts still match the unsharded run byte for byte.
  fs::remove(profile);
  const auto merged = merge_shards(shard_dirs, root.path() + "/merged");
  write_artifacts(merged, root.path() + "/merged");
  EXPECT_EQ(slurp(root.path() + "/merged/runs.csv"),
            slurp(whole.output_dir + "/runs.csv"));
  EXPECT_EQ(slurp(root.path() + "/merged/summary.json"),
            slurp(whole.output_dir + "/summary.json"));
}

TEST_F(MergeTest, ForeignOutcomesInReusedStoresAreLeftAlone) {
  TempDir root("hmpt_merge_foreign");
  const auto full = scenarios();

  std::vector<std::string> shard_dirs;
  for (int i = 1; i <= 2; ++i) {
    shard_dirs.push_back(root.path() + "/shard" + std::to_string(i));
    ASSERT_TRUE(run_shard(full, {i, 2}, shard_dirs.back()).ok());
  }

  // Reused store directories legitimately hold outcomes of *other*
  // campaigns. Plant contradictory stale files in both stores: outside
  // the campaign they must neither leak into the merged store nor
  // trigger conflict detection.
  for (int i = 0; i < 2; ++i) {
    std::ofstream os(shard_dirs[i] + "/outcomes/feedfacefeedface.json");
    os << "stale bytes from another campaign " << i;
  }

  MergeStats stats;
  const auto merged =
      merge_shards(shard_dirs, root.path() + "/merged", &stats);
  EXPECT_EQ(merged.cached, static_cast<int>(full.size()));
  EXPECT_EQ(stats.outcomes_merged, static_cast<int>(full.size()));
  EXPECT_FALSE(fs::exists(root.path() +
                          "/merged/outcomes/feedfacefeedface.json"));
}

TEST_F(MergeTest, FailedScenariosAreReproducedFromTheManifests) {
  TempDir root("hmpt_merge_failures");

  // A campaign where one scenario fails at execute time ("recorded" with
  // a missing profile passes planning), run whole with keep-going and as
  // two shards with keep-going.
  ScenarioMatrix matrix;
  matrix.workloads = {parse_workload_spec("mg"),
                      parse_workload_spec(
                          "recorded:path=/nonexistent.profile")};
  matrix.platforms = {"xeon-max"};
  matrix.strategies = {"estimator", "online"};
  matrix.repetitions = 1;
  const auto full = matrix.expand();

  CampaignOptions whole;
  whole.output_dir = root.path() + "/whole";
  whole.keep_going = true;
  const auto cold = CampaignRunner(whole).run(full);
  EXPECT_EQ(cold.failed, 2);
  write_artifacts(cold, whole.output_dir);

  std::vector<std::string> shard_dirs;
  for (int i = 1; i <= 2; ++i) {
    shard_dirs.push_back(root.path() + "/shard" + std::to_string(i));
    run_shard(full, {i, 2}, shard_dirs.back(), /*keep_going=*/true);
  }

  MergeStats stats;
  const auto merged =
      merge_shards(shard_dirs, root.path() + "/merged", &stats);
  EXPECT_EQ(stats.failed, 2);
  EXPECT_EQ(merged.failed, 2);

  // Failures (with their recorded error text) land in the merged summary
  // exactly as the unsharded run wrote them.
  write_artifacts(merged, root.path() + "/merged");
  EXPECT_EQ(slurp(root.path() + "/merged/summary.json"),
            slurp(whole.output_dir + "/summary.json"));
  EXPECT_EQ(slurp(root.path() + "/merged/runs.csv"),
            slurp(whole.output_dir + "/runs.csv"));
}

}  // namespace
}  // namespace hmpt::campaign
