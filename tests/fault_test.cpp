// fault_test.cpp — the fault-tolerance stack end to end: the FaultSpec
// grammar, deterministic affliction, the scheduler's retry loop draining
// injected transient failures and timeouts, the crash-safe job journal's
// count-based replay rule, and a daemon restart that replays journaled
// jobs to completion.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/outcome_store.h"
#include "campaign/workload_registry.h"
#include "common/error.h"
#include "common/retry.h"
#include "service/daemon.h"
#include "service/fault.h"
#include "service/journal.h"
#include "service/provider.h"
#include "service/scheduler.h"

namespace hmpt::service {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

campaign::Scenario scenario_with_reps(int reps) {
  campaign::Scenario s;
  s.workload = campaign::parse_workload_spec("mg");
  s.platform = "xeon-max";
  s.strategy = "estimator";
  s.repetitions = reps;
  return s;
}

/// A retry policy tuned for tests: generous attempts, no real sleeping.
RetryPolicy fast_retries(int attempts) {
  RetryPolicy policy;
  policy.max_attempts = attempts;
  policy.initial_backoff_s = 0.0;
  return policy;
}

// --------------------------------------------------------------- FaultSpec

TEST(FaultSpecTest, ParsesTheFullGrammar) {
  const auto spec = FaultSpec::parse(
      "seed=7,fail=0.3:2,timeout=0.25:1,slow=0.5:0.01,corrupt=0.1,"
      "crash-after=42");
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_DOUBLE_EQ(spec.fail_p, 0.3);
  EXPECT_EQ(spec.fail_attempts, 2);
  EXPECT_DOUBLE_EQ(spec.timeout_p, 0.25);
  EXPECT_EQ(spec.timeout_attempts, 1);
  EXPECT_DOUBLE_EQ(spec.slow_p, 0.5);
  EXPECT_DOUBLE_EQ(spec.slow_s, 0.01);
  EXPECT_DOUBLE_EQ(spec.corrupt_p, 0.1);
  EXPECT_EQ(spec.crash_after, 42);
  EXPECT_TRUE(spec.any());

  // canonical() round-trips through parse().
  const auto again = FaultSpec::parse(spec.canonical());
  EXPECT_EQ(again.canonical(), spec.canonical());
}

TEST(FaultSpecTest, EmptySpecArmsNothing) {
  const auto spec = FaultSpec::parse("");
  EXPECT_FALSE(spec.any());
  EXPECT_FALSE(FaultSpec::parse("seed=9").any());
}

TEST(FaultSpecTest, RejectsMalformedInput) {
  EXPECT_THROW(FaultSpec::parse("unknown=1"), Error);
  EXPECT_THROW(FaultSpec::parse("fail=1.5:1"), Error);   // P outside [0,1]
  EXPECT_THROW(FaultSpec::parse("fail=0.5:0"), Error);   // N must be >= 1
  EXPECT_THROW(FaultSpec::parse("slow=0.5:-1"), Error);  // S must be > 0
  EXPECT_THROW(FaultSpec::parse("seed=notanumber"), Error);
  EXPECT_THROW(FaultSpec::parse("crash-after=-2"), Error);
  EXPECT_THROW(FaultSpec::parse("fail"), Error);         // no '='
}

TEST(FaultSpecTest, AfflictionIsDeterministicPerFingerprint) {
  SimulatorProvider inner;
  const auto spec = FaultSpec::parse("seed=3,fail=0.5:1");
  FaultInjectingProvider a(inner, spec);
  FaultInjectingProvider b(inner, spec);

  int afflicted = 0;
  for (int reps = 1; reps <= 32; ++reps) {
    const auto fp = scenario_with_reps(reps).fingerprint();
    const bool hit = a.afflicts(fp, FaultInjectingProvider::Kind::Fail);
    // Two providers with the same spec agree, call after call.
    EXPECT_EQ(hit, b.afflicts(fp, FaultInjectingProvider::Kind::Fail));
    EXPECT_EQ(hit, a.afflicts(fp, FaultInjectingProvider::Kind::Fail));
    if (hit) ++afflicted;
  }
  // P=0.5 over 32 fingerprints: some hit, some spared.
  EXPECT_GT(afflicted, 0);
  EXPECT_LT(afflicted, 32);

  // A different seed redraws the blast radius (kinds are independent
  // streams too, but seed is the lever specs actually turn).
  FaultInjectingProvider reseeded(inner, FaultSpec::parse("seed=4,fail=0.5:1"));
  bool any_difference = false;
  for (int reps = 1; reps <= 32; ++reps) {
    const auto fp = scenario_with_reps(reps).fingerprint();
    if (a.afflicts(fp, FaultInjectingProvider::Kind::Fail) !=
        reseeded.afflicts(fp, FaultInjectingProvider::Kind::Fail))
      any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultSpecTest, ProbabilityExtremesAfflictAllOrNone) {
  SimulatorProvider inner;
  FaultInjectingProvider all(inner, FaultSpec::parse("fail=1:1"));
  FaultInjectingProvider none(inner, FaultSpec::parse("fail=0:1"));
  for (int reps = 1; reps <= 8; ++reps) {
    const auto fp = scenario_with_reps(reps).fingerprint();
    EXPECT_TRUE(all.afflicts(fp, FaultInjectingProvider::Kind::Fail));
    EXPECT_FALSE(none.afflicts(fp, FaultInjectingProvider::Kind::Fail));
  }
}

// ------------------------------------------- faults under scheduler retries

TEST(FaultRetryTest, TransientFailuresDrainWithinTheRetryBudget) {
  TempDir dir("hmpt_fault_transient");
  SimulatorProvider inner;
  // Every fingerprint fails its first two attempts, then succeeds.
  FaultInjectingProvider faulty(inner, FaultSpec::parse("fail=1:2"));

  SchedulerOptions options;
  options.retry = fast_retries(3);
  Scheduler scheduler(faulty, campaign::OutcomeStore(dir.path()), options);
  scheduler.start();
  const auto client = scheduler.new_client();
  const auto scenario = scenario_with_reps(1);

  scheduler.submit(client, scenario);
  const auto done = scheduler.wait(scenario.fingerprint());
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->state, JobState::Done) << done->error;
  EXPECT_EQ(done->attempts, 3);
  EXPECT_EQ(scheduler.counts().retries, 2u);
  ASSERT_TRUE(scheduler.outcome(scenario.fingerprint()).has_value());
}

TEST(FaultRetryTest, BudgetTooSmallFailsWithTheAttemptHistory) {
  TempDir dir("hmpt_fault_exhausted");
  SimulatorProvider inner;
  FaultInjectingProvider faulty(inner, FaultSpec::parse("fail=1:5"));

  SchedulerOptions options;
  options.retry = fast_retries(2);  // 2 attempts < 5 injected failures
  Scheduler scheduler(faulty, campaign::OutcomeStore(dir.path()), options);
  scheduler.start();
  const auto client = scheduler.new_client();
  const auto scenario = scenario_with_reps(1);

  scheduler.submit(client, scenario);
  const auto failed = scheduler.wait(scenario.fingerprint());
  ASSERT_TRUE(failed.has_value());
  EXPECT_EQ(failed->state, JobState::Failed);
  EXPECT_NE(failed->error.find("after 2 attempts"), std::string::npos);
  EXPECT_NE(failed->error.find("injected transient fault"),
            std::string::npos);
  EXPECT_EQ(failed->attempts, 2);
}

TEST(FaultRetryTest, TimeoutFaultIsCutByAttemptDeadlineAndRetried) {
  TempDir dir("hmpt_fault_timeout");
  SimulatorProvider inner;
  // First attempt hangs (cooperatively, on the token); second runs clean.
  FaultInjectingProvider faulty(inner, FaultSpec::parse("timeout=1:1"));

  SchedulerOptions options;
  options.retry = fast_retries(2);
  options.retry.attempt_deadline_s = 0.05;
  Scheduler scheduler(faulty, campaign::OutcomeStore(dir.path()), options);
  scheduler.start();
  const auto client = scheduler.new_client();
  const auto scenario = scenario_with_reps(1);

  scheduler.submit(client, scenario);
  const auto done = scheduler.wait(scenario.fingerprint());
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->state, JobState::Done) << done->error;
  EXPECT_EQ(done->attempts, 2);
  const auto counts = scheduler.counts();
  EXPECT_EQ(counts.retries, 1u);
  EXPECT_EQ(counts.timeouts, 1u);
}

TEST(FaultRetryTest, PerJobLimitsOverrideTheSchedulerPolicy) {
  TempDir dir("hmpt_fault_limits");
  SimulatorProvider inner;
  FaultInjectingProvider faulty(inner, FaultSpec::parse("fail=1:2"));

  SchedulerOptions options;
  options.retry = fast_retries(1);  // scheduler default: fail-fast
  options.retry.initial_backoff_s = 0.0;
  Scheduler scheduler(faulty, campaign::OutcomeStore(dir.path()), options);
  scheduler.start();
  const auto client = scheduler.new_client();

  // Default policy: one attempt, the injected failure sticks.
  const auto fail_fast = scenario_with_reps(1);
  scheduler.submit(client, fail_fast);
  const auto failed = scheduler.wait(fail_fast.fingerprint());
  ASSERT_TRUE(failed.has_value());
  EXPECT_EQ(failed->state, JobState::Failed);
  EXPECT_EQ(failed->attempts, 1);

  // The same faulty world, but this submit carries its own budget.
  const auto with_budget = scenario_with_reps(2);
  JobLimits limits;
  limits.max_attempts = 3;
  scheduler.submit(client, with_budget, /*priority=*/0, limits);
  const auto done = scheduler.wait(with_budget.fingerprint());
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->state, JobState::Done) << done->error;
  EXPECT_EQ(done->attempts, 3);
}

TEST(FaultRetryTest, CorruptFaultPerturbsTheOutcomeDeterministically) {
  SimulatorProvider inner;
  FaultInjectingProvider faulty(inner, FaultSpec::parse("corrupt=1"));
  const auto scenario = scenario_with_reps(1);
  CancelToken token;
  const auto honest = inner.run(scenario, token);
  const auto corrupted = faulty.run(scenario, token);
  EXPECT_DOUBLE_EQ(corrupted.speedup, honest.speedup + 1.0);
  // The store notices: an honest save followed by a corrupted save of
  // the same fingerprint is a determinism violation, and that error is
  // terminal — the retry loop must never paper over it.
  TempDir dir("hmpt_fault_corrupt");
  const campaign::OutcomeStore store(dir.path());
  store.save(scenario, honest);
  try {
    store.save(scenario, corrupted);
    FAIL() << "conflicting outcome must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("conflicting outcome"),
              std::string::npos);
    EXPECT_TRUE(is_terminal_error(e.what()));
  }
}

TEST(FaultRetryTest, SlowFaultDelaysButCompletes) {
  TempDir dir("hmpt_fault_slow");
  SimulatorProvider inner;
  FaultInjectingProvider faulty(inner, FaultSpec::parse("slow=1:0.02"));

  Scheduler scheduler(faulty, campaign::OutcomeStore(dir.path()), {});
  scheduler.start();
  const auto scenario = scenario_with_reps(1);
  scheduler.submit(scheduler.new_client(), scenario);
  const auto done = scheduler.wait(scenario.fingerprint());
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->state, JobState::Done) << done->error;
}

// ----------------------------------------------------------------- journal

TEST(JournalTest, ReplayReturnsAckedButUnfinishedJobs) {
  TempDir dir("hmpt_journal_basic");
  const auto path = dir.path() + "/journal.ndjson";
  const auto finished = scenario_with_reps(1);
  const auto pending = scenario_with_reps(2);
  {
    JobJournal journal(path);
    JobLimits limits;
    limits.max_attempts = 3;
    limits.deadline_s = 30.0;
    journal.record_submit(finished, /*priority=*/0, {});
    journal.record_submit(pending, /*priority=*/5, limits);
    journal.record_terminal(finished.fingerprint(), JobState::Done);
  }
  const auto replay = JobJournal::replay(path);
  EXPECT_EQ(replay.records, 3u);
  EXPECT_EQ(replay.settled, 1u);
  EXPECT_EQ(replay.skipped, 0u);
  ASSERT_EQ(replay.pending.size(), 1u);
  EXPECT_EQ(replay.pending[0].scenario.fingerprint(), pending.fingerprint());
  EXPECT_EQ(replay.pending[0].priority, 5);
  EXPECT_EQ(replay.pending[0].limits.max_attempts, 3);
  EXPECT_DOUBLE_EQ(replay.pending[0].limits.deadline_s, 30.0);
}

TEST(JournalTest, MissingFileIsAnEmptyReplay) {
  const auto replay = JobJournal::replay("/nonexistent/journal.ndjson");
  EXPECT_TRUE(replay.pending.empty());
  EXPECT_EQ(replay.records, 0u);
}

TEST(JournalTest, TornTailLineIsSkippedNeverFatal) {
  TempDir dir("hmpt_journal_torn");
  const auto path = dir.path() + "/journal.ndjson";
  const auto acked = scenario_with_reps(1);
  {
    JobJournal journal(path);
    journal.record_submit(acked, 0, {});
  }
  {
    // A crash mid-append: the last line is half a record, no newline.
    std::ofstream os(path, std::ios::app | std::ios::binary);
    os << R"({"kind":"submit","fingerprint":"deadbeef","scen)";
  }
  const auto replay = JobJournal::replay(path);
  EXPECT_EQ(replay.skipped, 1u);
  ASSERT_EQ(replay.pending.size(), 1u);  // the torn line was never acked
  EXPECT_EQ(replay.pending[0].scenario.fingerprint(), acked.fingerprint());
}

TEST(JournalTest, CountRuleHandlesResubmitAfterOldTerminal) {
  TempDir dir("hmpt_journal_counts");
  const auto path = dir.path() + "/journal.ndjson";
  const auto scenario = scenario_with_reps(1);
  {
    JobJournal journal(path);
    // Run 1: submitted and failed. Run 2: resubmitted, crash before the
    // terminal record. 2 submits > 1 terminal → pending, exactly once.
    journal.record_submit(scenario, 0, {});
    journal.record_terminal(scenario.fingerprint(), JobState::Failed);
    journal.record_submit(scenario, 0, {});
  }
  const auto replay = JobJournal::replay(path);
  ASSERT_EQ(replay.pending.size(), 1u);
  EXPECT_EQ(replay.pending[0].scenario.fingerprint(), scenario.fingerprint());
}

TEST(JournalTest, CountRuleIsOrderIndependent) {
  TempDir dir("hmpt_journal_order");
  const auto path = dir.path() + "/journal.ndjson";
  const auto scenario = scenario_with_reps(1);
  {
    JobJournal journal(path);
    // A completion racing ahead of its submit within one process: the
    // terminal record lands first. Counts still balance to settled.
    journal.record_terminal(scenario.fingerprint(), JobState::Done);
    journal.record_submit(scenario, 0, {});
  }
  const auto replay = JobJournal::replay(path);
  EXPECT_TRUE(replay.pending.empty());
  EXPECT_EQ(replay.settled, 1u);
}

// ------------------------------------------------- daemon restart + replay

TEST(JournalTest, DaemonReplaysJournaledJobsToCompletion) {
  TempDir dir("hmpt_journal_daemon");
  const auto journal_path = dir.path() + "/journal.ndjson";
  const auto scenario = scenario_with_reps(1);

  // "Previous run": the submit was acked (journaled) but the process
  // died before the job finished — no terminal record, empty store.
  {
    JobJournal journal(journal_path);
    journal.record_submit(scenario, 0, {});
  }

  DaemonOptions options;
  options.endpoint.unix_path =
      (fs::temp_directory_path() / "hmpt_journal_daemon.sock").string();
  options.store_dir = dir.path() + "/store";
  options.journal_path = journal_path;
  Daemon daemon(options);
  daemon.start();
  EXPECT_EQ(daemon.replayed_jobs(), 1u);

  const auto done = daemon.scheduler().wait(scenario.fingerprint());
  ASSERT_TRUE(done.has_value());
  EXPECT_TRUE(done->state == JobState::Done ||
              done->state == JobState::Cached)
      << to_string(done->state);
  EXPECT_TRUE(daemon.scheduler().outcome(scenario.fingerprint()).has_value());

  daemon.request_shutdown();
  ASSERT_TRUE(daemon.wait_for(10000));

  // The replayed job reached a terminal record: a second restart has
  // nothing left to replay.
  const auto replay = JobJournal::replay(journal_path);
  EXPECT_TRUE(replay.pending.empty());

  Daemon again(options);
  again.start();
  EXPECT_EQ(again.replayed_jobs(), 0u);
  again.request_shutdown();
  ASSERT_TRUE(again.wait_for(10000));
}

// ------------------------------------------------- batch runner retries

TEST(CampaignRetryTest, BatchRunnerAcceptsRetryOptionsAndRecordsAttempts) {
  TempDir dir("hmpt_campaign_faults");
  // The batch path has no provider seam; what it shares with the daemon
  // is the retry loop itself (common/retry). A clean run under a retry
  // budget must behave exactly like the fail-fast default — one attempt,
  // recorded on the run but kept out of the deterministic artefacts.
  campaign::CampaignOptions options;
  options.output_dir = dir.path() + "/out";
  options.attempts = 3;
  options.scenario_timeout_s = 60.0;
  const campaign::CampaignRunner runner(options);
  const auto report = runner.run({scenario_with_reps(1)});
  EXPECT_EQ(report.failed, 0);
  EXPECT_EQ(report.executed, 1);
  ASSERT_EQ(report.runs.size(), 1u);
  EXPECT_EQ(report.runs[0].attempts, 1);
}

TEST(CampaignRetryTest, RunnerRejectsNonsenseRetryOptions) {
  campaign::CampaignOptions options;
  options.attempts = 0;
  EXPECT_THROW(campaign::CampaignRunner{options}, Error);
  options.attempts = 1;
  options.scenario_timeout_s = -1.0;
  EXPECT_THROW(campaign::CampaignRunner{options}, Error);
}

}  // namespace
}  // namespace hmpt::service
