// Tests for common/json — the value model, writer and parser behind the
// campaign outcome store and the bench trajectories.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/json.h"

namespace hmpt {
namespace {

TEST(JsonTest, BuildsAndDumpsAllKinds) {
  JsonObject o;
  o["null"] = Json();
  o["flag"] = Json(true);
  o["count"] = Json(42);
  o["ratio"] = Json(0.5);
  o["name"] = Json("campaign");
  o["list"] = Json(JsonArray{Json(1), Json(2)});
  const Json doc(std::move(o));

  EXPECT_EQ(doc.dump(-1),
            "{\"null\":null,\"flag\":true,\"count\":42,\"ratio\":0.5,"
            "\"name\":\"campaign\",\"list\":[1,2]}");
}

TEST(JsonTest, ObjectsPreserveInsertionOrder) {
  JsonObject o;
  o["zebra"] = Json(1);
  o["alpha"] = Json(2);
  const Json doc(std::move(o));
  EXPECT_EQ(doc.dump(-1), "{\"zebra\":1,\"alpha\":2}");
}

TEST(JsonTest, ParseRoundTripsDump) {
  JsonObject inner;
  inner["text"] = Json("line\nbreak \"quoted\" back\\slash");
  inner["tiny"] = Json(1e-17);
  inner["negative"] = Json(-3.25);
  JsonObject o;
  o["inner"] = Json(std::move(inner));
  o["items"] = Json(JsonArray{Json(false), Json(), Json("x")});
  const Json doc(std::move(o));

  for (const int indent : {-1, 0, 2, 4}) {
    const Json reparsed = Json::parse(doc.dump(indent));
    EXPECT_EQ(reparsed.dump(-1), doc.dump(-1)) << "indent " << indent;
  }
}

TEST(JsonTest, NumbersRoundTripExactly) {
  // The outcome store relies on exact double round trips: a resumed
  // campaign must reproduce byte-identical artefacts from parsed values.
  for (const double value :
       {1.0 / 3.0, 6.02214076e23, -2.5e-13, 1e15, 123456789.125, 0.0}) {
    const Json parsed = Json::parse(Json(value).dump(-1));
    EXPECT_EQ(parsed.as_number(), value);
  }
}

TEST(JsonTest, ControlCharactersEscape) {
  const Json doc(std::string("bell\x07tab\t"));
  EXPECT_EQ(doc.dump(-1), "\"bell\\u0007tab\\t\"");
  EXPECT_EQ(Json::parse(doc.dump(-1)).as_string(), doc.as_string());
}

TEST(JsonTest, AccessorsEnforceKinds) {
  const Json doc = Json::parse("{\"a\": 1}");
  EXPECT_THROW(doc.as_array(), Error);
  EXPECT_THROW(doc.at("a").as_string(), Error);
  EXPECT_THROW(doc.at("missing"), Error);
  EXPECT_EQ(doc.number_or("a", 7.0), 1.0);
  EXPECT_EQ(doc.number_or("missing", 7.0), 7.0);
  EXPECT_EQ(doc.string_or("missing", "fallback"), "fallback");
}

TEST(JsonTest, ParserRejectsGarbage) {
  for (const char* text :
       {"", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "1 2",
        "\"unterminated", "{\"a\":1,}", "[1]]", "nan", "\"bad\\q\""}) {
    EXPECT_THROW(Json::parse(text), Error) << "'" << text << "'";
  }
}

TEST(JsonTest, CopiesAreDeep) {
  JsonObject o;
  o["list"] = Json(JsonArray{Json(1)});
  Json a(std::move(o));
  Json b = a;
  // Mutating the copy must not alias the original.
  JsonObject o2;
  o2["list"] = Json(JsonArray{Json(1), Json(2)});
  b = Json(std::move(o2));
  EXPECT_EQ(a.at("list").as_array().size(), 1u);
  EXPECT_EQ(b.at("list").as_array().size(), 2u);
}

TEST(JsonTest, NonFiniteNumbersRefuseToSerialise) {
  EXPECT_THROW(Json(std::nan("")).dump(), Error);
  EXPECT_THROW(Json(INFINITY).dump(), Error);
}

}  // namespace
}  // namespace hmpt
