// End-to-end tests of the hmpt_campaign / hmpt_merge / hmpt_report
// command-line tools (both store formats, the shard/merge workflow and
// the static HTML report) and of hmpt_analyze's campaign-backed flags
// (--json, --list-*). All binary paths come from CMake.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/outcome_io.h"
#include "simmem/simulator.h"
#include "workloads/app_models.h"
#include "workloads/trace_io.h"

namespace {

#ifndef HMPT_CAMPAIGN_PATH
#define HMPT_CAMPAIGN_PATH ""
#endif
#ifndef HMPT_MERGE_PATH
#define HMPT_MERGE_PATH ""
#endif
#ifndef HMPT_REPORT_PATH
#define HMPT_REPORT_PATH ""
#endif
#ifndef HMPT_ANALYZE_PATH
#define HMPT_ANALYZE_PATH ""
#endif

namespace fs = std::filesystem;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class CampaignCliTest : public ::testing::Test {
 protected:
  void SetUp() override { remove_stores(); }
  void TearDown() override {
    remove_stores();
    std::remove(out_.c_str());
    std::remove(json_.c_str());
    std::remove(campaign_file_.c_str());
  }

  void remove_stores() {
    fs::remove_all(store_);
    for (int i = 1; i <= 3; ++i)
      fs::remove_all(store_ + "-shard" + std::to_string(i));
    fs::remove_all(store_ + "-merged");
    fs::remove_all(store_ + "-packed");
  }

  int run(const std::string& args) {
    const std::string cmd = std::string(HMPT_CAMPAIGN_PATH) + " " + args +
                            " > " + out_ + " 2>&1";
    return std::system(cmd.c_str());
  }

  int run_merge(const std::string& args) {
    const std::string cmd = std::string(HMPT_MERGE_PATH) + " " + args +
                            " > " + out_ + " 2>&1";
    return std::system(cmd.c_str());
  }

  int run_report(const std::string& args) {
    const std::string cmd = std::string(HMPT_REPORT_PATH) + " " + args +
                            " > " + out_ + " 2>&1";
    return std::system(cmd.c_str());
  }

  /// The acceptance matrix: 3 workloads x 2 platforms x 3 strategies.
  std::string matrix_flags() const {
    return "--workload mg --workload stream:array_gb=1,iterations=2 "
           "--workload pointer-chase:window_gb=1,accesses=1e8 "
           "--platform xeon-max --platform spr-cxl "
           "--strategy exhaustive --strategy estimator --strategy online "
           "--reps 1 --out " +
           store_;
  }

  const std::string store_ = "/tmp/hmpt_campaign_cli_store";
  const std::string out_ = "/tmp/hmpt_campaign_cli.out";
  const std::string json_ = "/tmp/hmpt_campaign_cli.json";
  const std::string campaign_file_ = "/tmp/hmpt_campaign_cli.campaign";
};

TEST_F(CampaignCliTest, RunsResumesAndReproducesRunsCsv) {
  // Cold campaign: all 18 scenarios execute.
  ASSERT_EQ(run(matrix_flags() + " --jobs 0"), 0) << slurp(out_);
  std::string out = slurp(out_);
  EXPECT_NE(out.find("campaign: 18 scenarios"), std::string::npos) << out;
  EXPECT_NE(out.find("executed 18, cached 0, failed 0"), std::string::npos)
      << out;
  const std::string cold_csv = slurp(store_ + "/runs.csv");
  ASSERT_FALSE(cold_csv.empty());
  EXPECT_FALSE(slurp(store_ + "/summary.json").empty());

  // Resume: zero executions, byte-identical runs.csv.
  ASSERT_EQ(run(matrix_flags() + " --resume"), 0) << slurp(out_);
  out = slurp(out_);
  EXPECT_NE(out.find("executed 0, cached 18, failed 0"), std::string::npos)
      << out;
  EXPECT_EQ(slurp(store_ + "/runs.csv"), cold_csv);
}

TEST_F(CampaignCliTest, DryRunPrintsThePlanWithoutExecuting) {
  ASSERT_EQ(run(matrix_flags() + " --dry-run"), 0) << slurp(out_);
  const std::string dry = slurp(out_);
  EXPECT_NE(dry.find("dry run: nothing executed"), std::string::npos);
  // No store writes: the outcome directory was never even created.
  EXPECT_FALSE(fs::exists(fs::path(store_) / "outcomes"));

  // The scenario listing of the dry run is exactly the plan a real run
  // prints before executing.
  const auto plan_of = [](const std::string& text) {
    return text.substr(0, text.find("\n\n"));
  };
  const std::string dry_plan = plan_of(dry);
  EXPECT_NE(dry_plan.find("fingerprint"), std::string::npos);
  ASSERT_EQ(run(matrix_flags()), 0) << slurp(out_);
  EXPECT_EQ(plan_of(slurp(out_)), dry_plan);
}

TEST_F(CampaignCliTest, CampaignFileDrivesTheMatrix) {
  {
    std::ofstream os(campaign_file_);
    os << "# test campaign\n"
          "workload mg\n"
          "platform spr-cxl\n"
          "strategy estimator\n"
          "strategy online\n"
          "reps 1\n";
  }
  ASSERT_EQ(run(campaign_file_ + " --out " + store_), 0) << slurp(out_);
  EXPECT_NE(slurp(out_).find("campaign: 2 scenarios"), std::string::npos)
      << slurp(out_);

  // Flags widen the declared campaign (one more strategy = one more run).
  ASSERT_EQ(run(campaign_file_ + " --strategy exhaustive --resume --out " +
                store_),
            0)
      << slurp(out_);
  EXPECT_NE(slurp(out_).find("executed 1, cached 2"), std::string::npos)
      << slurp(out_);
}

TEST_F(CampaignCliTest, KeepGoingReportsFailuresInExitCode) {
  const std::string flags =
      "--workload recorded:path=/nonexistent.profile --workload mg "
      "--strategy estimator --reps 1 --keep-going --out " +
      store_;
  EXPECT_NE(run(flags), 0);
  const std::string out = slurp(out_);
  EXPECT_NE(out.find("failed recorded:path=/nonexistent.profile"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("executed 1, cached 0, failed 1"), std::string::npos)
      << out;
}

TEST_F(CampaignCliTest, ListingsAndUsage) {
  ASSERT_EQ(run("--list-workloads"), 0);
  EXPECT_NE(slurp(out_).find("kwave"), std::string::npos);
  ASSERT_EQ(run("--list-platforms"), 0);
  EXPECT_NE(slurp(out_).find("spr-cxl"), std::string::npos);
  EXPECT_EQ(run("--help"), 0);

  EXPECT_NE(run("--frobnicate"), 0);
  // Declaration errors are usage errors: exit 1 + the usage text, distinct
  // from the exit-2 of scenarios that fail while running.
  EXPECT_EQ(WEXITSTATUS(
                run("--workload mg --strategy frobnicate --out " + store_)),
            1);
  EXPECT_NE(slurp(out_).find("usage:"), std::string::npos);
  EXPECT_NE(run("--workload mg --platform frobnicate --out " + store_), 0);
  EXPECT_NE(run("--workload mg --jobs -1 --out " + store_), 0);
  EXPECT_NE(run("--workload mg --reps 0 --out " + store_), 0);
  EXPECT_NE(run("--workload mg --top-k 0 --out " + store_), 0);
  EXPECT_NE(run("--out " + store_), 0);  // no workloads declared
}

TEST_F(CampaignCliTest, ShardedRunsMergeToTheUnshardedArtifacts) {
  // Reference: the whole 18-scenario campaign in one process.
  ASSERT_EQ(run(matrix_flags() + " --jobs 0 --quiet"), 0) << slurp(out_);
  const std::string whole_csv = slurp(store_ + "/runs.csv");
  const std::string whole_summary = slurp(store_ + "/summary.json");
  ASSERT_FALSE(whole_csv.empty());
  // Every real run writes a (1/1) shard manifest next to its outcomes.
  EXPECT_TRUE(fs::exists(store_ + "/shard.manifest.json"));

  // The same campaign as three --shard slices, each into its own store.
  std::string shard_dirs;
  for (int i = 1; i <= 3; ++i) {
    const std::string dir = store_ + "-shard" + std::to_string(i);
    const std::string flags = matrix_flags();
    const auto out_pos = flags.find("--out");
    const std::string sharded =
        flags.substr(0, out_pos) + "--out " + dir + " --shard " +
        std::to_string(i) + "/3 --jobs 0 --quiet";
    ASSERT_EQ(run(sharded), 0) << slurp(out_);
    EXPECT_NE(slurp(out_).find("shard " + std::to_string(i) + "/3: 6 "),
              std::string::npos)
        << slurp(out_);
    EXPECT_TRUE(fs::exists(dir + "/shard.manifest.json"));
    shard_dirs += " " + dir;
  }

  // Merging a strict subset of the shards fails loudly...
  const std::string merged = store_ + "-merged";
  EXPECT_NE(run_merge("--out " + merged + " " + store_ + "-shard1"), 0);
  EXPECT_NE(slurp(out_).find("merge failed"), std::string::npos)
      << slurp(out_);

  // ...while all three merge into artefacts byte-identical to the
  // unsharded run's.
  ASSERT_EQ(run_merge("--out " + merged + shard_dirs), 0) << slurp(out_);
  EXPECT_NE(slurp(out_).find("merged 3 shards, 18 scenarios"),
            std::string::npos)
      << slurp(out_);
  EXPECT_EQ(slurp(merged + "/runs.csv"), whole_csv);
  EXPECT_EQ(slurp(merged + "/summary.json"), whole_summary);

  // Merging is idempotent: a second merge over the same shards into the
  // same directory re-validates the identical bytes and succeeds.
  ASSERT_EQ(run_merge("--out " + merged + shard_dirs), 0) << slurp(out_);
  EXPECT_EQ(slurp(merged + "/runs.csv"), whole_csv);

  // Bad usage exits 1.
  EXPECT_EQ(WEXITSTATUS(run_merge("")), 1);
  EXPECT_EQ(WEXITSTATUS(run_merge(shard_dirs)), 1);  // no --out
  // A bad --shard spec on hmpt_campaign is a usage error too.
  EXPECT_EQ(WEXITSTATUS(run(matrix_flags() + " --shard 4/3")), 1);
  EXPECT_EQ(WEXITSTATUS(run(matrix_flags() + " --shard 0/0")), 1);
}

TEST_F(CampaignCliTest, PackedStoreAndHtmlReportEndToEnd) {
  // Dir-format reference run (the default layout).
  ASSERT_EQ(run(matrix_flags() + " --jobs 0 --quiet"), 0) << slurp(out_);
  const std::string dir_csv = slurp(store_ + "/runs.csv");
  const std::string dir_summary = slurp(store_ + "/summary.json");
  ASSERT_FALSE(dir_csv.empty());

  // The same campaign into a packed store, with the HTML report: one
  // append-only log + index instead of 18 files, byte-identical
  // artefacts.
  const std::string packed = store_ + "-packed";
  ASSERT_EQ(run(matrix_flags() + " --jobs 0 --quiet --store-format packed" +
                " --report --out " + packed),
            0)
      << slurp(out_);
  std::string out = slurp(out_);
  EXPECT_NE(out.find("outcome store: " + packed + "/outcomes.log"),
            std::string::npos)
      << out;
  EXPECT_TRUE(fs::exists(packed + "/outcomes.log"));
  EXPECT_TRUE(fs::exists(packed + "/outcomes.idx"));
  EXPECT_FALSE(fs::exists(packed + "/outcomes"));
  EXPECT_EQ(slurp(packed + "/runs.csv"), dir_csv);
  EXPECT_EQ(slurp(packed + "/summary.json"), dir_summary);

  // --report wrote one self-contained document: inline charts, no
  // external fetches, a drill-down anchor per scenario.
  const std::string html = slurp(packed + "/report/index.html");
  ASSERT_FALSE(html.empty());
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("id=\"fp-"), std::string::npos);
  EXPECT_EQ(html.find("src=\"http"), std::string::npos);
  EXPECT_EQ(html.find("href=\"http"), std::string::npos);

  // Resume against the packed store: zero executions, identical bytes.
  ASSERT_EQ(run(matrix_flags() + " --jobs 0 --store-format packed" +
                " --resume --out " + packed),
            0)
      << slurp(out_);
  EXPECT_NE(slurp(out_).find("executed 0, cached 18, failed 0"),
            std::string::npos)
      << slurp(out_);
  EXPECT_EQ(slurp(packed + "/runs.csv"), dir_csv);

  // Pointing the default (dir) format at a packed store is refused with
  // a hint instead of silently growing a second store alongside.
  EXPECT_NE(run(matrix_flags() + " --resume --out " + packed), 0);
  EXPECT_NE(slurp(out_).find("--store-format"), std::string::npos)
      << slurp(out_);

  // hmpt_merge reads the dir store and converts it to packed (the 1/1
  // manifest makes a single store mergeable), reproducing the artefacts.
  const std::string merged = store_ + "-merged";
  ASSERT_EQ(run_merge("--out " + merged + " --store-format packed " +
                      store_),
            0)
      << slurp(out_);
  EXPECT_NE(slurp(out_).find("merged outcome store: " + merged +
                             "/outcomes.log"),
            std::string::npos)
      << slurp(out_);
  EXPECT_EQ(slurp(merged + "/runs.csv"), dir_csv);
  EXPECT_EQ(slurp(merged + "/summary.json"), dir_summary);

  // hmpt_report renders from a store alone, either format, and the two
  // documents agree byte for byte (fingerprint-ordered reconstruction).
  ASSERT_EQ(run_report(packed), 0) << slurp(out_);
  ASSERT_EQ(run_report(store_), 0) << slurp(out_);
  const std::string from_packed = slurp(packed + "/report/index.html");
  const std::string from_dir = slurp(store_ + "/report/index.html");
  ASSERT_FALSE(from_dir.empty());
  EXPECT_EQ(from_dir, from_packed);

  // Errors: no store is a report failure (2); bad usage is 1.
  EXPECT_EQ(WEXITSTATUS(run_report("/tmp/hmpt_cli_no_store_here")), 2);
  EXPECT_NE(slurp(out_).find("report failed"), std::string::npos)
      << slurp(out_);
  EXPECT_EQ(WEXITSTATUS(run_report("")), 1);
  EXPECT_EQ(WEXITSTATUS(run(matrix_flags() + " --store-format sqlite")), 1);
  EXPECT_EQ(WEXITSTATUS(run_merge("--out " + merged + " --store-format " +
                                  "sqlite " + store_)),
            1);
}

// ----------------------------------------------- hmpt_analyze satellites

class AnalyzeJsonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto simulator = hmpt::sim::MachineSimulator::paper_platform();
    const auto app = hmpt::workloads::make_mg_model(simulator);
    hmpt::workloads::save_workload(profile_, *app.workload);
  }
  void TearDown() override {
    std::remove(profile_.c_str());
    std::remove(out_.c_str());
    std::remove(json_.c_str());
  }

  int run(const std::string& args) {
    const std::string cmd = std::string(HMPT_ANALYZE_PATH) + " " + args +
                            " > " + out_ + " 2>&1";
    return std::system(cmd.c_str());
  }

  const std::string profile_ = "/tmp/hmpt_analyze_json_test.profile";
  const std::string out_ = "/tmp/hmpt_analyze_json_test.out";
  const std::string json_ = "/tmp/hmpt_analyze_json_test.json";
};

TEST_F(AnalyzeJsonTest, ListsPlatformsAndWorkloads) {
  ASSERT_EQ(run("--list-platforms"), 0) << slurp(out_);
  EXPECT_NE(slurp(out_).find("xeon-max (alias spr)"), std::string::npos);
  ASSERT_EQ(run("--list-workloads"), 0) << slurp(out_);
  EXPECT_NE(slurp(out_).find("recorded"), std::string::npos);
}

TEST_F(AnalyzeJsonTest, JsonFlagWritesARoundTrippableOutcome) {
  for (const std::string strategy : {"exhaustive", "online"}) {
    ASSERT_EQ(run(profile_ + " --strategy " + strategy + " --json " + json_),
              0)
        << slurp(out_);
    const std::string text = slurp(json_);
    ASSERT_FALSE(text.empty());
    const auto outcome =
        hmpt::tuner::outcome_from_json(hmpt::Json::parse(text));
    EXPECT_EQ(outcome.strategy, strategy);
    EXPECT_EQ(outcome.workload, "NPB:_Multi-Grid");  // profile-sanitised
    EXPECT_NEAR(outcome.speedup, 2.27, 0.01);
    // The exhaustive artefact carries the full sweep (like a campaign
    // scenario's stored outcome); online carries its measured table.
    if (strategy == "exhaustive") {
      ASSERT_TRUE(outcome.sweep.has_value());
      EXPECT_EQ(outcome.sweep->configs.size(), 8u);  // 2^3 on MG
    } else {
      EXPECT_FALSE(outcome.configs().empty());
    }
    // Serialising the parsed outcome reproduces the file byte-for-byte.
    EXPECT_EQ(hmpt::tuner::outcome_to_json(outcome).dump(), text);
  }
}

}  // namespace
