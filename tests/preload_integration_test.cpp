// Integration test of the LD_PRELOAD shim: spawn a real child process with
// libhmpt_preload.so injected and verify the per-site profile is produced.
// This is exactly how the paper's tool attaches to unmodified NPB
// binaries. The library path is provided by CMake via HMPT_PRELOAD_PATH.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

#ifndef HMPT_PRELOAD_PATH
#define HMPT_PRELOAD_PATH ""
#endif

std::string run_with_preload(const std::string& command,
                             const std::string& profile_path) {
  std::remove(profile_path.c_str());
  const std::string full = "HMPT_PROFILE_OUT=" + profile_path +
                           " LD_PRELOAD=" + HMPT_PRELOAD_PATH + " " +
                           command + " > /dev/null 2>&1";
  const int rc = std::system(full.c_str());
  EXPECT_EQ(rc, 0) << full;
  std::ifstream in(profile_path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(PreloadIntegrationTest, LibraryExists) {
  std::ifstream lib(HMPT_PRELOAD_PATH, std::ios::binary);
  EXPECT_TRUE(lib.good()) << "missing " << HMPT_PRELOAD_PATH;
}

TEST(PreloadIntegrationTest, ProfilesAnUnmodifiedBinary) {
  const std::string profile =
      run_with_preload("/bin/ls /", "/tmp/hmpt_preload_ls.txt");
  ASSERT_FALSE(profile.empty());
  EXPECT_NE(profile.find("# hmpt preload profile"), std::string::npos);
  EXPECT_NE(profile.find("site "), std::string::npos);
  EXPECT_NE(profile.find("allocs "), std::string::npos);
}

TEST(PreloadIntegrationTest, DisableKillsTracking) {
  const std::string profile_path = "/tmp/hmpt_preload_disabled.txt";
  std::remove(profile_path.c_str());
  const std::string full = std::string("HMPT_DISABLE=1 HMPT_PROFILE_OUT=") +
                           profile_path + " LD_PRELOAD=" +
                           HMPT_PRELOAD_PATH + " /bin/ls / > /dev/null 2>&1";
  ASSERT_EQ(std::system(full.c_str()), 0);
  std::ifstream in(profile_path);
  EXPECT_FALSE(in.good());  // nothing dumped when disabled
}

TEST(PreloadIntegrationTest, MinSizeFiltersSmallAllocations) {
  // With an absurd threshold nothing qualifies; the profile has only the
  // header line.
  const std::string profile_path = "/tmp/hmpt_preload_minsize.txt";
  std::remove(profile_path.c_str());
  const std::string full =
      std::string("HMPT_MIN_SIZE=1073741824 HMPT_PROFILE_OUT=") +
      profile_path + " LD_PRELOAD=" + HMPT_PRELOAD_PATH +
      " /bin/ls / > /dev/null 2>&1";
  ASSERT_EQ(std::system(full.c_str()), 0);
  std::ifstream in(profile_path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string profile = buffer.str();
  ASSERT_FALSE(profile.empty());
  // Only the header remains ("site" appears in it, so anchor to a line
  // start).
  EXPECT_EQ(profile.find("\nsite "), std::string::npos) << profile;
}

}  // namespace
