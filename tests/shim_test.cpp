// Tests for hmpt::shim — call-site capture, allocation registry, placement
// plans, and the interception front door.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/units.h"
#include "shim/call_site.h"
#include "shim/plan.h"
#include "shim/registry.h"
#include "shim/shim_allocator.h"

namespace hmpt::shim {
namespace {

using topo::PoolKind;

// -------------------------------------------------------------- call sites
TEST(CallSiteTest, SameFramesSameHash) {
  const std::vector<std::uintptr_t> frames = {0x1000, 0x2000, 0x3000};
  EXPECT_EQ(hash_frames(frames), hash_frames(frames));
  auto reordered = frames;
  std::swap(reordered[0], reordered[1]);
  EXPECT_NE(hash_frames(frames), hash_frames(reordered));
}

TEST(CallSiteTest, CaptureIsStableAtOneTextualSite) {
  // Repeated execution of the *same* call site (one source line, as in a
  // loop) must produce the same hash — the paper's aliasing behaviour.
  StackHash hashes[3];
  for (auto& h : hashes) h = capture_stack_hash(0);  // single textual site
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(hashes[1], hashes[2]);
}

__attribute__((noinline)) StackHash capture_from_helper() {
  return capture_stack_hash(0);
}

TEST(CallSiteTest, DifferentCallPathsDiffer) {
  // A hash captured through an extra frame differs from a direct one.
  EXPECT_NE(capture_from_helper(), capture_stack_hash(0));
}

TEST(CallSiteRegistryTest, InternIsIdempotent) {
  CallSiteRegistry reg;
  const int a = reg.intern(0xabc, "alpha");
  const int b = reg.intern(0xabc, "ignored-second-label");
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.num_sites(), 1);
  EXPECT_EQ(reg.site(a).label, "alpha");
  EXPECT_EQ(reg.site(a).hash, 0xabcu);
}

TEST(CallSiteRegistryTest, NamedSitesShareHashesWithPlans) {
  CallSiteRegistry reg;
  const int id = reg.intern_named("field::u");
  EXPECT_EQ(reg.site(id).hash, hash_label("field::u"));
  EXPECT_EQ(reg.find_by_label("field::u"), id);
  EXPECT_EQ(reg.find_by_label("missing"), -1);
}

TEST(CallSiteRegistryTest, OutOfRangeSiteThrows) {
  CallSiteRegistry reg;
  EXPECT_THROW(reg.site(0), Error);
}

// ---------------------------------------------------------------- registry
TEST(RegistryTest, LifetimeTracking) {
  AllocationRegistry reg;
  const auto id = reg.on_alloc(0, 0x1000, 256, 1, PoolKind::HBM, false);
  EXPECT_GT(id, 0u);
  EXPECT_EQ(reg.live_count(), 1u);
  EXPECT_EQ(reg.live_bytes(), 256u);
  const auto rec = reg.find_live(0x1000);
  ASSERT_TRUE(rec.has_value());
  EXPECT_TRUE(rec->live());
  reg.on_free(0x1000);
  EXPECT_EQ(reg.live_count(), 0u);
  EXPECT_FALSE(reg.find_live(0x1000).has_value());
  const auto records = reg.all_records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_FALSE(records[0].live());
  EXPECT_GT(*records[0].free_time, records[0].alloc_time);
}

TEST(RegistryTest, InteriorAddressResolves) {
  AllocationRegistry reg;
  reg.on_alloc(0, 0x1000, 256, 0, PoolKind::DDR, false);
  const auto rec = reg.find_live(0x10ff);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->address, 0x1000u);
  EXPECT_FALSE(reg.find_live(0x1100).has_value());
}

TEST(RegistryTest, DoubleEventsThrow) {
  AllocationRegistry reg;
  reg.on_alloc(0, 0x1000, 64, 0, PoolKind::DDR, false);
  EXPECT_THROW(reg.on_alloc(1, 0x1000, 64, 0, PoolKind::DDR, false), Error);
  reg.on_free(0x1000);
  EXPECT_THROW(reg.on_free(0x1000), Error);
  EXPECT_THROW(reg.on_free(0x2000), Error);
}

TEST(RegistryTest, SiteUsageAggregatesAndPeaks) {
  CallSiteRegistry sites;
  const int s0 = sites.intern_named("a");
  const int s1 = sites.intern_named("b");
  AllocationRegistry reg;
  // Site a: two overlapping allocations (peak 300), one freed.
  reg.on_alloc(s0, 0x1000, 100, 0, PoolKind::DDR, false);
  reg.on_alloc(s0, 0x2000, 200, 0, PoolKind::DDR, false);
  reg.on_free(0x1000);
  // Site b: sequential allocations (peak 50).
  reg.on_alloc(s1, 0x3000, 50, 1, PoolKind::HBM, false);
  reg.on_free(0x3000);
  reg.on_alloc(s1, 0x4000, 50, 1, PoolKind::HBM, false);

  const auto usage = reg.site_usage(sites);
  ASSERT_EQ(usage.size(), 2u);
  EXPECT_EQ(usage[0].label, "a");
  EXPECT_EQ(usage[0].num_allocations, 2u);
  EXPECT_EQ(usage[0].live_bytes, 200u);
  EXPECT_EQ(usage[0].peak_live_bytes, 300u);
  EXPECT_EQ(usage[1].num_allocations, 2u);
  EXPECT_EQ(usage[1].peak_live_bytes, 50u);  // never overlapped
}

TEST(RegistryTest, CompactDropsFreedOnly) {
  AllocationRegistry reg;
  reg.on_alloc(0, 0x1000, 64, 0, PoolKind::DDR, false);
  reg.on_alloc(0, 0x2000, 64, 0, PoolKind::DDR, false);
  reg.on_free(0x1000);
  reg.compact();
  EXPECT_EQ(reg.all_records().size(), 1u);
  EXPECT_EQ(reg.live_count(), 1u);
  EXPECT_TRUE(reg.find_live(0x2000).has_value());
}

// -------------------------------------------------------------------- plan
TEST(PlanTest, DefaultAndPinnedKinds) {
  PlacementPlan plan(PoolKind::DDR);
  plan.set_named_site("hot", PoolKind::HBM);
  EXPECT_EQ(plan.kind_for_named("hot"), PoolKind::HBM);
  EXPECT_EQ(plan.kind_for_named("cold"), PoolKind::DDR);
  EXPECT_EQ(plan.num_pinned_sites(), 1u);
  plan.clear();
  EXPECT_EQ(plan.kind_for_named("hot"), PoolKind::DDR);
}

TEST(PlanTest, SerializationRoundTrips) {
  PlacementPlan plan(PoolKind::HBM);
  plan.set_named_site("mg::u", PoolKind::HBM);
  plan.set_named_site("mg::v", PoolKind::DDR);
  plan.set_site(0xdeadbeef, PoolKind::DDR);
  const auto text = plan.serialize();
  const auto parsed = PlacementPlan::parse(text);
  EXPECT_EQ(parsed.default_kind(), PoolKind::HBM);
  EXPECT_EQ(parsed.kind_for_named("mg::u"), PoolKind::HBM);
  EXPECT_EQ(parsed.kind_for_named("mg::v"), PoolKind::DDR);
  EXPECT_EQ(parsed.kind_for(0xdeadbeef), PoolKind::DDR);
  EXPECT_EQ(parsed.num_pinned_sites(), 3u);
}

TEST(PlanTest, ParseHandlesCommentsAndBlanks) {
  const auto plan = PlacementPlan::parse(
      "# a comment\n\ndefault HBM\nnamed x DDR # trailing\n");
  EXPECT_EQ(plan.default_kind(), PoolKind::HBM);
  EXPECT_EQ(plan.kind_for_named("x"), PoolKind::DDR);
}

TEST(PlanTest, ParseRejectsGarbage) {
  EXPECT_THROW(PlacementPlan::parse("frobnicate x HBM\n"), Error);
  EXPECT_THROW(PlacementPlan::parse("default\n"), Error);
  EXPECT_THROW(PlacementPlan::parse("named onlylabel\n"), Error);
  EXPECT_THROW(PlacementPlan::parse("default MRAM\n"), Error);
}

// ---------------------------------------------------------- ShimAllocator
class ShimTest : public ::testing::Test {
 protected:
  topo::Machine machine_ = topo::xeon_max_9468_single_flat_snc4();
  pools::PoolAllocator pool_{machine_};
  ShimAllocator shim_{pool_};
};

TEST_F(ShimTest, NamedAllocationFollowsPlan) {
  PlacementPlan plan(PoolKind::DDR);
  plan.set_named_site("hot", PoolKind::HBM);
  shim_.set_plan(plan);
  void* hot = shim_.allocate_named("hot", 4096);
  void* cold = shim_.allocate_named("cold", 4096);
  EXPECT_EQ(pool_.kind_of(hot), PoolKind::HBM);
  EXPECT_EQ(pool_.kind_of(cold), PoolKind::DDR);
  shim_.deallocate(hot);
  shim_.deallocate(cold);
}

TEST_F(ShimTest, PlanSwapAffectsOnlyNewAllocations) {
  void* before = shim_.allocate_named("x", 1024);
  PlacementPlan plan(PoolKind::DDR);
  plan.set_named_site("x", PoolKind::HBM);
  shim_.set_plan(plan);
  void* after = shim_.allocate_named("x", 1024);
  EXPECT_EQ(pool_.kind_of(before), PoolKind::DDR);
  EXPECT_EQ(pool_.kind_of(after), PoolKind::HBM);
  shim_.deallocate(before);
  shim_.deallocate(after);
}

TEST_F(ShimTest, RegistryRecordsSitesAndLifetimes) {
  void* a = shim_.allocate_named("site::a", 100);
  void* b = shim_.allocate_named("site::a", 200);  // aliases to same site
  void* c = shim_.allocate_named("site::b", 300);
  EXPECT_EQ(shim_.sites().num_sites(), 2);
  const auto usage = shim_.registry().site_usage(shim_.sites());
  ASSERT_EQ(usage.size(), 2u);
  EXPECT_EQ(usage[0].num_allocations, 2u);  // aliased site::a
  EXPECT_EQ(usage[0].live_bytes, 300u);
  shim_.deallocate(a);
  shim_.deallocate(b);
  shim_.deallocate(c);
  EXPECT_EQ(shim_.registry().live_count(), 0u);
}

TEST_F(ShimTest, MacroCapturesDistinctTextualSites) {
  void* a = HMPT_SHIM_ALLOC(shim_, 128);  // site 1
  void* b = HMPT_SHIM_ALLOC(shim_, 128);  // site 2 (different line)
  EXPECT_EQ(shim_.sites().num_sites(), 2);
  shim_.deallocate(a);
  shim_.deallocate(b);
}

TEST_F(ShimTest, MacroAliasesLoopIterations) {
  // The paper's aliasing caveat: allocations from the same source line in
  // a loop share one call site and therefore one placement.
  std::vector<void*> ptrs;
  for (int i = 0; i < 5; ++i)
    ptrs.push_back(HMPT_SHIM_ALLOC(shim_, 64));  // one textual site
  EXPECT_EQ(shim_.sites().num_sites(), 1);
  for (void* p : ptrs) shim_.deallocate(p);
}

TEST_F(ShimTest, TypedHelperAllocatesElementCount) {
  double* v = shim_.allocate_array<double>("vec", 1000);
  ASSERT_NE(v, nullptr);
  v[999] = 2.5;
  EXPECT_EQ(pool_.size_of(v), 8000u);
  shim_.deallocate(v);
}

TEST_F(ShimTest, ResetTrackingKeepsPlanAndPool) {
  PlacementPlan plan(PoolKind::HBM);
  shim_.set_plan(plan);
  void* p = shim_.allocate_named("x", 64);
  shim_.reset_tracking();
  EXPECT_EQ(shim_.registry().live_count(), 0u);
  EXPECT_EQ(shim_.plan().default_kind(), PoolKind::HBM);
  // The pool still owns the memory; free through it directly.
  pool_.deallocate(p);
}

TEST_F(ShimTest, EmptyLabelRejected) {
  EXPECT_THROW(shim_.allocate_named("", 64), Error);
}

}  // namespace
}  // namespace hmpt::shim
