// Tests for hmpt::pools — interval page map, free-list arena, multi-pool
// allocator with capacity enforcement and spill policy.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/units.h"
#include "pools/arena.h"
#include "pools/page_map.h"
#include "pools/pool_allocator.h"

namespace hmpt::pools {
namespace {

using topo::PoolKind;

// ---------------------------------------------------------------- PageMap
TEST(PageMapTest, LookupHitsInteriorAddresses) {
  PageMap map;
  map.insert(0x1000, 0x100, 3, 42);
  const auto hit = map.lookup(0x1080);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->node, 3);
  EXPECT_EQ(hit->tag, 42u);
  EXPECT_EQ(hit->size(), 0x100u);
}

TEST(PageMapTest, LookupMissesOutsideRanges) {
  PageMap map;
  map.insert(0x1000, 0x100, 0, 1);
  EXPECT_FALSE(map.lookup(0xfff).has_value());
  EXPECT_FALSE(map.lookup(0x1100).has_value());  // end is exclusive
  EXPECT_TRUE(map.lookup(0x10ff).has_value());
}

TEST(PageMapTest, OverlapsRejected) {
  PageMap map;
  map.insert(0x1000, 0x100, 0, 1);
  EXPECT_THROW(map.insert(0x1080, 0x10, 0, 2), Error);   // inside
  EXPECT_THROW(map.insert(0xf80, 0x100, 0, 3), Error);   // straddles start
  EXPECT_THROW(map.insert(0x10ff, 0x10, 0, 4), Error);   // straddles end
  map.insert(0x1100, 0x10, 0, 5);                        // adjacent is fine
  map.insert(0xff0, 0x10, 0, 6);
  EXPECT_EQ(map.size(), 3u);
}

TEST(PageMapTest, EraseReturnsInfoAndFreesRange) {
  PageMap map;
  map.insert(0x2000, 0x200, 1, 7);
  const auto info = map.erase(0x2000);
  EXPECT_EQ(info.tag, 7u);
  EXPECT_TRUE(map.empty());
  EXPECT_THROW(map.erase(0x2000), Error);
  map.insert(0x2000, 0x200, 1, 8);  // reusable after erase
}

TEST(PageMapTest, BytesOnNodeAndSetNode) {
  PageMap map;
  map.insert(0x1000, 100, 0, 1);
  map.insert(0x2000, 200, 1, 2);
  map.insert(0x3000, 300, 1, 3);
  EXPECT_EQ(map.bytes_on_node(0), 100u);
  EXPECT_EQ(map.bytes_on_node(1), 500u);
  EXPECT_EQ(map.bytes_on_node(), 600u);
  map.set_node(0x2000, 0);
  EXPECT_EQ(map.bytes_on_node(0), 300u);
  EXPECT_THROW(map.set_node(0x9999, 0), Error);
}

TEST(PageMapTest, ZeroSizeRangeRejected) {
  PageMap map;
  EXPECT_THROW(map.insert(0x1000, 0, 0, 1), Error);
}

// ------------------------------------------------------------------ Arena
TEST(ArenaTest, AllocateWritesAreUsable) {
  PoolArena arena(1u << 20);
  void* p = arena.allocate(4096);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xab, 4096);
  EXPECT_TRUE(arena.owns(p));
  EXPECT_EQ(arena.allocation_size(p), 4096u);
  arena.deallocate(p);
  EXPECT_FALSE(arena.owns(p));
}

TEST(ArenaTest, CapacityIsEnforced) {
  PoolArena arena(10'000);
  void* a = arena.allocate(6000);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(arena.allocate(6000), nullptr);  // over capacity
  EXPECT_EQ(arena.stats().failed_allocs, 1u);
  arena.deallocate(a);
  EXPECT_NE(arena.allocate(6000), nullptr);  // fits again
}

TEST(ArenaTest, StatsTrackPeakAndCounts) {
  PoolArena arena(1u << 20);
  void* a = arena.allocate(1000);
  void* b = arena.allocate(2000);
  EXPECT_EQ(arena.stats().allocated, 3000u);
  EXPECT_EQ(arena.stats().num_allocs, 2u);
  arena.deallocate(a);
  EXPECT_EQ(arena.stats().allocated, 2000u);
  EXPECT_EQ(arena.stats().peak_allocated, 3000u);
  EXPECT_EQ(arena.stats().total_allocs, 2u);
  arena.deallocate(b);
  EXPECT_EQ(arena.stats().num_allocs, 0u);
}

TEST(ArenaTest, AlignmentHonored) {
  PoolArena arena(1u << 22);
  for (std::size_t align : {16u, 64u, 256u, 4096u}) {
    void* p = arena.allocate(100, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u) << align;
    arena.deallocate(p);
  }
  EXPECT_THROW(arena.allocate(16, 3), Error);  // non-power-of-two
}

TEST(ArenaTest, CoalescingBoundsFragmentation) {
  PoolArena arena(1u << 22, 1u << 22);  // single slab
  std::vector<void*> blocks;
  for (int i = 0; i < 64; ++i) blocks.push_back(arena.allocate(1024));
  // Free every other block, then the rest: everything must coalesce back.
  for (std::size_t i = 0; i < blocks.size(); i += 2)
    arena.deallocate(blocks[i]);
  for (std::size_t i = 1; i < blocks.size(); i += 2)
    arena.deallocate(blocks[i]);
  EXPECT_EQ(arena.stats().allocated, 0u);
  EXPECT_EQ(arena.free_list_size(), 1u);
}

TEST(ArenaTest, ReuseAfterFreeKeepsHostReservationFlat) {
  PoolArena arena(1u << 24, 1u << 20);
  void* first = arena.allocate(1u << 18);
  arena.deallocate(first);
  const std::size_t reserved = arena.stats().host_reserved;
  for (int i = 0; i < 100; ++i) {
    void* p = arena.allocate(1u << 18);
    arena.deallocate(p);
  }
  EXPECT_EQ(arena.stats().host_reserved, reserved);
}

TEST(ArenaTest, LargeAllocationGetsDedicatedSlab) {
  PoolArena arena(1u << 26, 1u << 16);  // 64 kB slabs
  void* big = arena.allocate(1u << 22);  // 4 MB
  ASSERT_NE(big, nullptr);
  std::memset(big, 1, 1u << 22);
  arena.deallocate(big);
}

TEST(ArenaTest, InvalidOperationsThrow) {
  PoolArena arena(1u << 20);
  EXPECT_THROW(arena.allocate(0), Error);
  EXPECT_THROW(arena.deallocate(nullptr), Error);
  int on_stack = 0;
  EXPECT_THROW(arena.deallocate(&on_stack), Error);
  void* p = arena.allocate(64);
  arena.deallocate(p);
  EXPECT_THROW(arena.deallocate(p), Error);  // double free detected
}

// ---------------------------------------------------------- PoolAllocator
class PoolAllocatorTest : public ::testing::Test {
 protected:
  topo::Machine machine_ = topo::xeon_max_9468_single_flat_snc4();
  PoolAllocator alloc_{machine_, OomPolicy::Spill};
};

TEST_F(PoolAllocatorTest, AllocationLandsInRequestedKind) {
  const auto a = alloc_.allocate(4096, PoolKind::HBM);
  ASSERT_NE(a.ptr, nullptr);
  EXPECT_EQ(a.kind, PoolKind::HBM);
  EXPECT_FALSE(a.spilled);
  EXPECT_EQ(alloc_.kind_of(a.ptr), PoolKind::HBM);
  EXPECT_EQ(alloc_.size_of(a.ptr), 4096u);
  alloc_.deallocate(a.ptr);
}

TEST_F(PoolAllocatorTest, RoundRobinInterleavesNodes) {
  std::vector<int> nodes;
  std::vector<void*> ptrs;
  for (int i = 0; i < 8; ++i) {
    const auto a = alloc_.allocate(1024, PoolKind::HBM);
    nodes.push_back(a.node);
    ptrs.push_back(a.ptr);
  }
  // 4 HBM nodes on one socket: each must be used twice.
  std::map<int, int> counts;
  for (int n : nodes) ++counts[n];
  EXPECT_EQ(counts.size(), 4u);
  for (const auto& [node, count] : counts) EXPECT_EQ(count, 2);
  for (void* p : ptrs) alloc_.deallocate(p);
}

TEST_F(PoolAllocatorTest, SpillFallsBackToDdr) {
  // HBM per socket: 4 x 16 GiB simulated; exhaust one node's worth many
  // times over with big blocks (use a small testbed for speed).
  auto machine = topo::two_pool_testbed(1.0 * GiB, 16.0 * MiB);
  PoolAllocator alloc(machine, OomPolicy::Spill);
  const auto a = alloc.allocate(12u << 20, PoolKind::HBM);
  EXPECT_FALSE(a.spilled);
  const auto b = alloc.allocate(12u << 20, PoolKind::HBM);  // HBM full
  ASSERT_NE(b.ptr, nullptr);
  EXPECT_TRUE(b.spilled);
  EXPECT_EQ(b.kind, PoolKind::DDR);
  alloc.deallocate(a.ptr);
  alloc.deallocate(b.ptr);
}

TEST_F(PoolAllocatorTest, ThrowAndNullPolicies) {
  auto machine = topo::two_pool_testbed(64.0 * MiB, 16.0 * MiB);
  PoolAllocator strict(machine, OomPolicy::Throw);
  const auto a = strict.allocate(12u << 20, PoolKind::HBM);
  EXPECT_THROW(strict.allocate(12u << 20, PoolKind::HBM), Error);
  strict.deallocate(a.ptr);

  PoolAllocator lenient(machine, OomPolicy::ReturnNull);
  const auto b = lenient.allocate(12u << 20, PoolKind::HBM);
  const auto c = lenient.allocate(12u << 20, PoolKind::HBM);
  EXPECT_EQ(c.ptr, nullptr);
  lenient.deallocate(b.ptr);
}

TEST_F(PoolAllocatorTest, ExplicitNodePlacement) {
  const auto a = alloc_.allocate_on_node(2048, 6);
  ASSERT_NE(a.ptr, nullptr);
  EXPECT_EQ(a.node, 6);
  EXPECT_EQ(alloc_.node_of(a.ptr), 6);
  alloc_.deallocate(a.ptr);
  EXPECT_THROW(alloc_.allocate_on_node(1, 99), Error);
}

TEST_F(PoolAllocatorTest, AccountingPerKind) {
  const auto a = alloc_.allocate(1000, PoolKind::HBM);
  const auto b = alloc_.allocate(2000, PoolKind::DDR);
  EXPECT_EQ(alloc_.bytes_in_kind(PoolKind::HBM), 1000u);
  EXPECT_EQ(alloc_.bytes_in_kind(PoolKind::DDR), 2000u);
  EXPECT_EQ(alloc_.live_allocations(), 2u);
  alloc_.deallocate(a.ptr);
  alloc_.deallocate(b.ptr);
  EXPECT_EQ(alloc_.live_allocations(), 0u);
}

TEST_F(PoolAllocatorTest, PageMapSnapshotResolvesPointers) {
  const auto a = alloc_.allocate(4096, PoolKind::DDR);
  const auto map = alloc_.page_map_snapshot();
  const auto hit =
      map.lookup(reinterpret_cast<std::uintptr_t>(a.ptr) + 100);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->node, a.node);
  alloc_.deallocate(a.ptr);
}

TEST_F(PoolAllocatorTest, ConcurrentAllocFreeIsSafe) {
  constexpr int kThreads = 4, kIters = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const auto kind = (t + i) % 2 == 0 ? PoolKind::DDR : PoolKind::HBM;
        const auto a = alloc_.allocate(64 + static_cast<std::size_t>(i % 7) *
                                                128,
                                       kind);
        ASSERT_NE(a.ptr, nullptr);
        std::memset(a.ptr, t, 64);
        alloc_.deallocate(a.ptr);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(alloc_.live_allocations(), 0u);
}

TEST_F(PoolAllocatorTest, StlAdapterWorksWithVector) {
  PoolStlAllocator<double> adapter(alloc_, PoolKind::HBM);
  std::vector<double, PoolStlAllocator<double>> v(adapter);
  v.resize(1000, 1.5);
  EXPECT_DOUBLE_EQ(v[999], 1.5);
  EXPECT_GT(alloc_.bytes_in_kind(PoolKind::HBM), 0u);
  v = std::vector<double, PoolStlAllocator<double>>(adapter);  // free all
  EXPECT_EQ(alloc_.live_allocations(), 0u);
}

}  // namespace
}  // namespace hmpt::pools
