// Tests for the extension features: profile (de)serialisation, the
// KNL-like platform preset, and broad parameterized sweeps that widen
// coverage of the solver and workloads across kernels, sizes and thread
// counts.
#include <gtest/gtest.h>

#include <cstdio>

#include "common/error.h"
#include "common/units.h"
#include "core/driver.h"
#include "simmem/simulator.h"
#include "workloads/app_models.h"
#include "workloads/fft.h"
#include "workloads/line_solver.h"
#include "workloads/stream.h"
#include "workloads/trace_io.h"
#include "workloads/unstructured.h"

namespace hmpt {
namespace {

using topo::PoolKind;

// ---------------------------------------------------------------- trace IO
TEST(TraceIoTest, RoundTripPreservesEverything) {
  auto simulator = sim::MachineSimulator::paper_platform();
  const auto app = workloads::make_mg_model(simulator);
  const std::string text = workloads::serialize_workload(*app.workload);
  const auto restored = workloads::parse_workload(text);

  ASSERT_EQ(restored.num_groups(), app.workload->num_groups());
  const auto orig_groups = app.workload->groups();
  const auto back_groups = restored.groups();
  for (std::size_t g = 0; g < orig_groups.size(); ++g) {
    EXPECT_EQ(back_groups[g].label, orig_groups[g].label);
    EXPECT_DOUBLE_EQ(back_groups[g].bytes, orig_groups[g].bytes);
  }
  const auto orig = app.workload->trace();
  const auto back = restored.trace();
  ASSERT_EQ(back.phases.size(), orig.phases.size());
  EXPECT_DOUBLE_EQ(back.total_bytes(), orig.total_bytes());
  EXPECT_DOUBLE_EQ(back.total_flops(), orig.total_flops());
  for (std::size_t p = 0; p < orig.phases.size(); ++p) {
    ASSERT_EQ(back.phases[p].streams.size(), orig.phases[p].streams.size());
    for (std::size_t s = 0; s < orig.phases[p].streams.size(); ++s) {
      EXPECT_EQ(back.phases[p].streams[s].pattern,
                orig.phases[p].streams[s].pattern);
      EXPECT_EQ(back.phases[p].streams[s].group,
                orig.phases[p].streams[s].group);
    }
  }
}

TEST(TraceIoTest, AnalysisIdenticalAfterRoundTrip) {
  auto simulator = sim::MachineSimulator::paper_platform();
  const auto app = workloads::make_sp_model(simulator);
  const auto restored =
      workloads::parse_workload(workloads::serialize_workload(
          *app.workload));
  tuner::Driver driver(simulator, app.context);
  const auto a = driver.analyze(*app.workload);
  const auto b = driver.analyze(restored);
  EXPECT_DOUBLE_EQ(a.summary.max_speedup, b.summary.max_speedup);
  EXPECT_EQ(a.summary.usage90_mask, b.summary.usage90_mask);
}

TEST(TraceIoTest, FileRoundTrip) {
  auto simulator = sim::MachineSimulator::paper_platform();
  const auto app = workloads::make_is_model(simulator);
  const std::string path = "/tmp/hmpt_trace_io_test.profile";
  workloads::save_workload(path, *app.workload);
  const auto restored = workloads::load_workload(path);
  EXPECT_EQ(restored.num_groups(), 4);
  std::remove(path.c_str());
  EXPECT_THROW(workloads::load_workload("/nonexistent/x.profile"), Error);
}

TEST(TraceIoTest, ParserRejectsMalformedInput) {
  EXPECT_THROW(workloads::parse_workload("frob x\n"), Error);
  EXPECT_THROW(workloads::parse_workload("group 0 a\n"), Error);  // arity
  EXPECT_THROW(workloads::parse_workload("group 1 a 10\n"),
               Error);  // non-dense id
  EXPECT_THROW(
      workloads::parse_workload(
          "group 0 a 10\nstream 0 1 0 sequential 1 0\n"),
      Error);  // stream before phase
  EXPECT_THROW(workloads::parse_workload(
                   "group 0 a 10\nphase p 0 1\nstream 5 1 0 "
                   "sequential 1 0\n"),
               Error);  // group out of range
  EXPECT_THROW(workloads::parse_workload(
                   "group 0 a 10\nphase p 0 1\nstream 0 1 0 "
                   "zigzag 1 0\n"),
               Error);  // unknown pattern
  EXPECT_THROW(workloads::parse_workload(""), Error);  // no groups
}

TEST(TraceIoTest, CommentsAndBlanksIgnored) {
  const auto wl = workloads::parse_workload(
      "# profile\n\nworkload probe\ngroup 0 a 100\n"
      "phase p 5 1 # trailing\nstream 0 50 0 random 1 0\n");
  EXPECT_EQ(wl.name(), "probe");
  EXPECT_DOUBLE_EQ(wl.trace().total_bytes(), 50.0);
}

// -------------------------------------------------------------- KNL preset
TEST(KnlPlatformTest, TopologyShape) {
  const auto machine = topo::knl_like_flat_snc4();
  EXPECT_EQ(machine.num_nodes(), 8);
  EXPECT_EQ(machine.num_cores(), 64);
  EXPECT_DOUBLE_EQ(machine.capacity_of_kind(PoolKind::HBM), 16.0 * GiB);
  EXPECT_DOUBLE_EQ(machine.capacity_of_kind(PoolKind::DDR), 96.0 * GiB);
}

TEST(KnlPlatformTest, BandwidthsMatchKnlCharacteristics) {
  sim::MachineSimulator knl(topo::knl_like_flat_snc4(),
                            sim::knl_like_calibration());
  const auto ctx = knl.full_machine();
  const auto& model = knl.pool_model();
  EXPECT_NEAR(model.stream_bandwidth(PoolKind::DDR, ctx.threads,
                                     ctx.tiles) / GB,
              90.0, 5.0);
  EXPECT_NEAR(model.stream_bandwidth(PoolKind::HBM, ctx.threads,
                                     ctx.tiles) / GB,
              430.0, 40.0);
  // MCDRAM latency penalty ~25 %.
  EXPECT_NEAR(model.idle_latency(PoolKind::HBM) /
                  model.idle_latency(PoolKind::DDR),
              1.25, 0.02);
}

TEST(KnlPlatformTest, TunerWorksUnchangedOnKnl) {
  // The whole pipeline is platform-agnostic: analyse STREAM on KNL.
  sim::MachineSimulator knl(topo::knl_like_flat_snc4(),
                            sim::knl_like_calibration());
  workloads::StreamWorkload stream(4.0 * GB, 1);
  tuner::Driver driver(knl, knl.full_machine());
  const auto report = driver.analyze(stream);
  // MCDRAM/DDR ratio ~5x on KNL: larger headroom than SPR's 3.5x.
  EXPECT_GT(report.summary.max_speedup, 3.0);
  EXPECT_LE(report.recommended.hbm_bytes,
            knl.machine().capacity_of_kind(PoolKind::HBM));
}

// --------------------------------------------------- parameterized sweeps
struct StreamCase {
  workloads::StreamKernel kernel;
  int threads_per_tile;
};

class StreamKernelSweep : public ::testing::TestWithParam<StreamCase> {};

TEST_P(StreamKernelSweep, BandwidthOrderingHolds) {
  auto simulator = sim::MachineSimulator::paper_platform_single();
  const auto ctx = simulator.socket_context(GetParam().threads_per_tile);
  const auto phase =
      workloads::make_stream_phase(GetParam().kernel, 8.0 * GB);
  const double ddr = simulator.phase_bandwidth(
      phase, sim::Placement::uniform(3, PoolKind::DDR), ctx);
  const double hbm = simulator.phase_bandwidth(
      phase, sim::Placement::uniform(3, PoolKind::HBM), ctx);
  EXPECT_GT(ddr, 0.0);
  if (GetParam().threads_per_tile >= 3) {
    // With enough occupancy HBM never loses on pure streaming.
    EXPECT_GE(hbm, ddr * (1.0 - 1e-9));
  } else {
    // At 1-2 threads/tile DDR's lower latency wins, as Fig. 2 shows —
    // but never by more than the latency ratio.
    EXPECT_GE(hbm, ddr * 0.8);
  }
  // Neither exceeds the theoretical achieved plateau.
  EXPECT_LE(hbm, 4 * 175.0 * GB * 1.001);
  EXPECT_LE(ddr, 4 * 50.0 * GB * 1.001);
}

INSTANTIATE_TEST_SUITE_P(
    KernelsAndThreads, StreamKernelSweep,
    ::testing::Values(
        StreamCase{workloads::StreamKernel::Copy, 1},
        StreamCase{workloads::StreamKernel::Copy, 6},
        StreamCase{workloads::StreamKernel::Copy, 12},
        StreamCase{workloads::StreamKernel::Scale, 4},
        StreamCase{workloads::StreamKernel::Scale, 12},
        StreamCase{workloads::StreamKernel::Add, 1},
        StreamCase{workloads::StreamKernel::Add, 8},
        StreamCase{workloads::StreamKernel::Add, 12},
        StreamCase{workloads::StreamKernel::Triad, 2},
        StreamCase{workloads::StreamKernel::Triad, 12}));

class FftSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizeSweep, RoundTripAtEverySize) {
  const std::size_t n = GetParam();
  std::vector<workloads::Complex> data(n);
  Rng rng(n);
  for (auto& v : data)
    v = workloads::Complex(rng.next_double() - 0.5,
                           rng.next_double() - 0.5);
  const auto original = data;
  workloads::fft_inplace(data, false);
  workloads::fft_inplace(data, true);
  double max_err = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    max_err = std::max(max_err, std::abs(data[i] - original[i]));
  EXPECT_LT(max_err, 1e-9 * std::max(1.0, std::log2(
                                              static_cast<double>(n))));
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftSizeSweep,
                         ::testing::Values(1, 2, 4, 8, 32, 128, 1024,
                                           4096));

struct LineSolverCase {
  workloads::LineSystem system;
  std::size_t n;
};

class LineSolverSweep : public ::testing::TestWithParam<LineSolverCase> {};

TEST_P(LineSolverSweep, ConvergesAtEverySize) {
  topo::Machine machine = topo::xeon_max_9468_single_flat_snc4();
  pools::PoolAllocator pool(machine);
  shim::ShimAllocator shim(pool);
  workloads::MiniLineSolverConfig config;
  config.n = GetParam().n;
  config.system = GetParam().system;
  config.sweeps = 1;
  const auto result =
      workloads::run_mini_line_solver(shim, config, "sweep");
  EXPECT_TRUE(result.converged) << result.max_residual;
}

INSTANTIATE_TEST_SUITE_P(
    SystemsAndSizes, LineSolverSweep,
    ::testing::Values(
        LineSolverCase{workloads::LineSystem::Tridiagonal, 4},
        LineSolverCase{workloads::LineSystem::Tridiagonal, 8},
        LineSolverCase{workloads::LineSystem::Tridiagonal, 12},
        LineSolverCase{workloads::LineSystem::Pentadiagonal, 6},
        LineSolverCase{workloads::LineSystem::Pentadiagonal, 8},
        LineSolverCase{workloads::LineSystem::Pentadiagonal, 12}));

// ----------------------------------------------------------------- mini UA
class MiniUaTest : public ::testing::Test {
 protected:
  topo::Machine machine_ = topo::xeon_max_9468_single_flat_snc4();
  pools::PoolAllocator pool_{machine_};
  shim::ShimAllocator shim_{pool_};
};

TEST_F(MiniUaTest, JacobiConvergesOnRandomMesh) {
  workloads::MiniUaConfig config;
  config.base_vertices = 256;
  config.levels = 3;
  const auto result = workloads::run_mini_ua(shim_, config);
  EXPECT_TRUE(result.converging);
  EXPECT_LT(result.final_residual, 0.5 * result.initial_residual);
}

TEST_F(MiniUaTest, ManySmallSitesRequireFolding) {
  // UA's defining Table I property: dozens of allocations, most tiny.
  workloads::MiniUaConfig config;
  config.base_vertices = 256;
  config.levels = 4;
  sample::IbsSampler sampler({128, sample::SamplingMode::Poisson, 13});
  const auto result = workloads::run_mini_ua(shim_, config, &sampler);
  EXPECT_EQ(result.allocations_made, 4 * 7);
  EXPECT_EQ(shim_.sites().num_sites(), 4 * 7);

  // The grouping step must fold the metadata into the rest group and
  // keep at most 8 tunable groups, exactly like ua.D's 56 -> 8.
  const auto usage = shim_.registry().site_usage(shim_.sites());
  const auto densities = tuner::site_densities(
      shim_.registry(), shim_.sites(), sampler.report());
  tuner::GroupingOptions options;
  options.min_bytes = 2048.0;  // folds the 64/16-element metadata arrays
  options.max_groups = 8;
  const auto groups = tuner::build_groups(usage, densities, options);
  EXPECT_EQ(groups.size(), 8u);
  EXPECT_EQ(groups.back().label, "rest");
  EXPECT_GT(groups.back().sites.size(), 10u);
  // The finest level's solution vector (hot random gathers) outranks the
  // coarse metadata.
  bool finest_hot_found = false;
  for (std::size_t g = 0; g + 1 < groups.size(); ++g)
    finest_hot_found |= groups[g].label == "ua::L3::x";
  EXPECT_TRUE(finest_hot_found);
}

TEST_F(MiniUaTest, RecordedTraceSweepsThroughDriver) {
  workloads::MiniUaConfig config;
  config.base_vertices = 128;
  config.levels = 2;
  const auto result = workloads::run_mini_ua(shim_, config);
  // Analyse the recorded 10-group trace directly (5 arrays x 2 levels).
  std::vector<workloads::GroupInfo> infos;
  const auto usage = shim_.registry().site_usage(shim_.sites());
  infos.resize(10, {"", 1.0});
  for (int l = 0; l < 2; ++l) {
    const std::string prefix = "ua::L" + std::to_string(l) + "::";
    const char* names[5] = {"xadj", "adjncy", "x", "b", "diag"};
    for (int a = 0; a < 5; ++a) {
      for (const auto& u : usage)
        if (u.label == prefix + names[a])
          infos[static_cast<std::size_t>(5 * l + a)] = {
              u.label, static_cast<double>(u.peak_live_bytes)};
    }
  }
  workloads::RecordedWorkload recorded("mini-ua", infos, result.trace);
  auto simulator = sim::MachineSimulator::paper_platform();
  tuner::Driver driver(simulator, simulator.full_machine());
  const auto report = driver.analyze(recorded);
  EXPECT_GE(report.summary.max_speedup, 1.0);
  EXPECT_EQ(report.space.num_groups(), 10);
}

// Knapsack planning agrees with exhaustive search for additive apps.
TEST(KnapsackVsExhaustiveTest, AgreeOnAdditiveApps) {
  auto simulator = sim::MachineSimulator::paper_platform();
  for (auto factory : {workloads::make_lu_model, workloads::make_ua_model}) {
    const auto app = factory(simulator);
    std::vector<double> bytes;
    for (const auto& g : app.workload->groups()) bytes.push_back(g.bytes);
    tuner::ConfigSpace space(bytes);
    tuner::ExperimentRunner runner(simulator, app.context, {1, true});
    const auto sweep = runner.sweep(*app.workload, space);
    const tuner::LinearEstimator est(sweep);
    tuner::CapacityPlanner planner(sweep, space);
    for (double fraction : {0.3, 0.6, 0.9}) {
      const double budget = fraction * space.total_bytes();
      const auto exact = planner.best_under_budget(budget);
      const auto approx = tuner::knapsack_plan(est, bytes, budget);
      // The estimator's convexity bias is tiny for additive apps, so the
      // knapsack choice must be within 2 % of the measured optimum.
      EXPECT_GE(sweep.of(approx.mask).speedup, 0.98 * exact.speedup)
          << app.name << " @ " << fraction;
    }
  }
}

// Sweep of the Gray-vs-natural enumeration: identical results either way.
TEST(SweepOrderTest, GrayAndNaturalOrdersAgree) {
  auto simulator = sim::MachineSimulator::paper_platform();
  const auto app = workloads::make_mg_model(simulator);
  tuner::ConfigSpace space([&] {
    std::vector<double> bytes;
    for (const auto& g : app.workload->groups()) bytes.push_back(g.bytes);
    return bytes;
  }());
  tuner::ExperimentRunner gray(simulator, app.context, {1, true});
  tuner::ExperimentRunner natural(simulator, app.context, {1, false});
  const auto a = gray.sweep(*app.workload, space);
  const auto b = natural.sweep(*app.workload, space);
  for (std::size_t m = 0; m < a.configs.size(); ++m) {
    EXPECT_DOUBLE_EQ(a.configs[m].mean_time, b.configs[m].mean_time) << m;
    EXPECT_DOUBLE_EQ(a.configs[m].speedup, b.configs[m].speedup) << m;
  }
}

// Execution-context sweep: speedup conclusions are stable across thread
// counts for bandwidth-bound workloads once both pools are saturated.
class ContextSweep : public ::testing::TestWithParam<int> {};

TEST_P(ContextSweep, MgNinetyPercentConfigStableWhenSaturated) {
  auto simulator = sim::MachineSimulator::paper_platform();
  const auto app = workloads::make_mg_model(simulator);
  tuner::ConfigSpace space([&] {
    std::vector<double> bytes;
    for (const auto& g : app.workload->groups()) bytes.push_back(g.bytes);
    return bytes;
  }());
  const sim::ExecutionContext ctx{GetParam(), 8};
  tuner::ExperimentRunner runner(simulator, ctx, {1, true});
  const auto summary = tuner::summarize(runner.sweep(*app.workload, space));
  EXPECT_EQ(summary.usage90_mask, 0b011u);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ContextSweep,
                         ::testing::Values(72, 84, 96));

}  // namespace
}  // namespace hmpt
