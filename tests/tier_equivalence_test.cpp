// Differential lockdown of the k-tier placement generalisation: on
// two-tier (DDR/HBM) machines the Placement/config-id path must be
// bit-identical to the pre-refactor bitmask path — same enumeration order,
// same noise streams, same measured times, same chosen placement — for all
// three strategies, with and without measurement noise, serial and
// parallel. The reference implementations below are line-for-line ports of
// the pre-refactor mask-based algorithms (binary Gray sweep, greedy online
// flips, estimator-guided top-k); any divergence fails the suite and
// therefore the build.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "core/session.h"
#include "core/strategy.h"
#include "workloads/app_models.h"

namespace hmpt {
namespace {

using tuner::ConfigMask;

// ------------------------------------------------------- legacy reference
// The pre-refactor two-tier machinery, reconstructed on top of the raw
// simulator: masks are HBM bitmasks, placements are decoded bit by bit.

struct LegacyWorkload {
  sim::PhaseTrace trace;
  std::vector<double> bytes;  ///< group footprints
  sim::ExecutionContext ctx;
};

sim::Placement legacy_placement(const std::vector<double>& bytes,
                                ConfigMask mask) {
  std::vector<topo::PoolKind> pools(bytes.size(), topo::PoolKind::DDR);
  for (std::size_t g = 0; g < bytes.size(); ++g)
    if (mask & (ConfigMask{1} << g)) pools[g] = topo::PoolKind::HBM;
  return sim::Placement(std::move(pools));
}

double legacy_hbm_bytes(const std::vector<double>& bytes, ConfigMask mask) {
  double hbm = 0.0;
  for (std::size_t g = 0; g < bytes.size(); ++g)
    if (mask & (ConfigMask{1} << g)) hbm += bytes[g];
  return hbm;
}

struct LegacyConfig {
  ConfigMask mask = 0;
  double mean_time = 0.0;
  double stddev_time = 0.0;
  double speedup = 0.0;
};

/// The pre-refactor measure_config: deterministic time once, noise per
/// repetition from stream (mask, rep).
LegacyConfig legacy_measure(const sim::MachineSimulator& sim,
                            const LegacyWorkload& w, ConfigMask mask,
                            int reps, double baseline_time) {
  const double t =
      sim.time_trace(w.trace, legacy_placement(w.bytes, mask), w.ctx);
  RunningStats runs;
  for (int rep = 0; rep < reps; ++rep)
    runs.add(t * sim.noise_factor({mask, static_cast<std::uint64_t>(rep)}));
  LegacyConfig result;
  result.mask = mask;
  result.mean_time = runs.mean();
  result.stddev_time = runs.stddev();
  result.speedup = baseline_time > 0.0 ? baseline_time / runs.mean() : 1.0;
  return result;
}

/// The pre-refactor exhaustive sweep: binary Gray order, baseline first.
std::vector<LegacyConfig> legacy_sweep(const sim::MachineSimulator& sim,
                                       const LegacyWorkload& w, int reps,
                                       double* baseline_out) {
  const std::size_t size = std::size_t{1} << w.bytes.size();
  std::vector<LegacyConfig> configs(size);
  LegacyConfig baseline = legacy_measure(sim, w, 0, reps, 0.0);
  baseline.speedup = 1.0;
  configs[0] = baseline;
  *baseline_out = baseline.mean_time;
  for (std::size_t i = 0; i < size; ++i) {
    const auto mask = static_cast<ConfigMask>(i ^ (i >> 1));
    if (mask == 0) continue;
    configs[mask] = legacy_measure(sim, w, mask, reps, baseline.mean_time);
  }
  return configs;
}

struct LegacyStep {
  ConfigMask tried = 0;
  double observed_time = 0.0;
  bool kept = false;
};

/// The pre-refactor online greedy tuner (flip candidates scored by signed
/// access density, confirmation via keep_threshold, patience passes).
struct LegacyOnlineResult {
  ConfigMask final_mask = 0;
  double final_time = 0.0;
  double baseline_time = 0.0;
  std::vector<LegacyStep> trajectory;
};

LegacyOnlineResult legacy_online(const sim::MachineSimulator& sim,
                                 const LegacyWorkload& w,
                                 double hbm_budget_bytes, int patience,
                                 int max_iterations) {
  const int n = static_cast<int>(w.bytes.size());
  const double budget = hbm_budget_bytes;
  constexpr double kKeepThreshold = 1e-3;

  std::unordered_map<ConfigMask, std::uint32_t> visits;
  const auto observe = [&](ConfigMask mask) {
    const std::uint64_t rep = visits[mask]++;
    return sim.measure_trace(w.trace, legacy_placement(w.bytes, mask),
                             w.ctx, {mask, rep});
  };

  LegacyOnlineResult result;
  ConfigMask mask = 0;
  double current = observe(mask);
  result.baseline_time = current;
  int iterations = 1;
  int rejections = 0;

  std::vector<double> density(static_cast<std::size_t>(n), 0.0);
  for (int g = 0; g < n; ++g)
    density[static_cast<std::size_t>(g)] =
        w.trace.access_fraction(g) /
        std::max(1.0, w.bytes[static_cast<std::size_t>(g)]);

  while (iterations < max_iterations && rejections < patience) {
    struct Candidate {
      int group;
      double score;
    };
    std::vector<Candidate> candidates;
    for (int g = 0; g < n; ++g) {
      const bool in_hbm = mask & (ConfigMask{1} << g);
      if (!in_hbm) {
        if (legacy_hbm_bytes(w.bytes, mask) +
                w.bytes[static_cast<std::size_t>(g)] >
            budget)
          continue;
        candidates.push_back({g, density[static_cast<std::size_t>(g)]});
      } else {
        candidates.push_back({g, -density[static_cast<std::size_t>(g)]});
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.score > b.score;
              });

    bool improved = false;
    for (const auto& candidate : candidates) {
      if (iterations >= max_iterations) break;
      const ConfigMask trial_mask =
          mask ^ (ConfigMask{1} << candidate.group);
      const double trial = observe(trial_mask);
      ++iterations;
      const bool kept = trial < current * (1.0 - kKeepThreshold);
      result.trajectory.push_back({trial_mask, trial, kept});
      if (kept) {
        mask = trial_mask;
        current = trial;
        improved = true;
        break;
      }
    }
    if (improved) {
      rejections = 0;
    } else {
      ++rejections;
      if (candidates.empty()) break;
    }
  }

  result.final_mask = mask;
  result.final_time = current;
  return result;
}

/// The pre-refactor estimator-guided search: baseline + n singles, linear
/// fit, measure the top-k predicted budget-fitting masks.
struct LegacyGuidedResult {
  ConfigMask chosen_mask = 0;
  double chosen_time = 0.0;
  std::vector<LegacyStep> trajectory;
};

LegacyGuidedResult legacy_guided(const sim::MachineSimulator& sim,
                                 const LegacyWorkload& w, int reps,
                                 int top_k, double cap) {
  const int n = static_cast<int>(w.bytes.size());
  const std::size_t size = std::size_t{1} << n;
  LegacyGuidedResult out;
  double best = 0.0;
  std::vector<char> measured(size, 0);

  const auto record = [&](const LegacyConfig& result) {
    measured[result.mask] = 1;
    const bool fits = legacy_hbm_bytes(w.bytes, result.mask) <= cap;
    const bool accepted = fits && result.speedup > best;
    if (accepted) {
      best = result.speedup;
      out.chosen_mask = result.mask;
      out.chosen_time = result.mean_time;
    }
    out.trajectory.push_back({result.mask, result.mean_time, accepted});
  };

  LegacyConfig baseline = legacy_measure(sim, w, 0, reps, 0.0);
  baseline.speedup = 1.0;
  const double baseline_time = baseline.mean_time;
  record(baseline);

  std::vector<double> singles(static_cast<std::size_t>(n), 1.0);
  for (int g = 0; g < n; ++g) {
    const auto single =
        legacy_measure(sim, w, ConfigMask{1} << g, reps, baseline_time);
    record(single);
    singles[static_cast<std::size_t>(g)] = single.speedup;
  }

  std::vector<std::pair<double, ConfigMask>> ranked;
  for (ConfigMask mask = 0; mask < size; ++mask) {
    if (measured[mask]) continue;
    if (legacy_hbm_bytes(w.bytes, mask) > cap) continue;
    double est = 1.0;
    for (int g = 0; g < n; ++g)
      if (mask & (ConfigMask{1} << g))
        est += singles[static_cast<std::size_t>(g)] - 1.0;
    ranked.emplace_back(est, mask);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  const std::size_t k =
      std::min<std::size_t>(static_cast<std::size_t>(top_k), ranked.size());
  for (std::size_t i = 0; i < k; ++i)
    record(legacy_measure(sim, w, ranked[i].second, reps, baseline_time));
  return out;
}

// ------------------------------------------------------------------ tests

class TierEquivalenceTest : public ::testing::TestWithParam<double> {
 protected:
  sim::MachineSimulator make_sim() const {
    return sim::MachineSimulator(topo::xeon_max_9468_duo_flat_snc4(),
                                 sim::default_spr_hbm_calibration(),
                                 {GetParam(), 42});
  }
  static LegacyWorkload legacy_of(const workloads::AppInfo& app) {
    LegacyWorkload w;
    w.trace = app.workload->trace();
    for (const auto& g : app.workload->groups()) w.bytes.push_back(g.bytes);
    w.ctx = app.context;
    return w;
  }
};

TEST_P(TierEquivalenceTest, ExhaustiveSweepMatchesMaskPath) {
  auto simulator = make_sim();
  for (auto* make : {&workloads::make_mg_model,
                     &workloads::make_kwave_model}) {
    const auto app = (*make)(simulator);
    const auto w = legacy_of(app);

    double legacy_baseline = 0.0;
    const auto reference =
        legacy_sweep(simulator, w, /*reps=*/3, &legacy_baseline);

    for (const int jobs : {1, 4}) {
      const auto outcome = tuner::Session::on(simulator)
                               .workload(*app.workload)
                               .context(app.context)
                               .repetitions(3)
                               .jobs(jobs)
                               .run();
      ASSERT_TRUE(outcome.sweep.has_value());
      const auto& sweep = *outcome.sweep;
      ASSERT_EQ(sweep.configs.size(), reference.size())
          << app.workload->name();
      EXPECT_EQ(sweep.baseline_time, legacy_baseline);
      for (std::size_t m = 0; m < reference.size(); ++m) {
        EXPECT_EQ(sweep.configs[m].mask, reference[m].mask);
        EXPECT_EQ(sweep.configs[m].mean_time, reference[m].mean_time)
            << app.workload->name() << " mask " << m << " jobs " << jobs;
        EXPECT_EQ(sweep.configs[m].stddev_time, reference[m].stddev_time);
        EXPECT_EQ(sweep.configs[m].speedup, reference[m].speedup);
      }
      // The enumeration itself is the binary reflected Gray code.
      int step = 0;
      for (const auto& s : outcome.trajectory) {
        const auto expected = static_cast<ConfigMask>(step ^ (step >> 1));
        EXPECT_EQ(s.mask, expected) << "gray step " << step;
        ++step;
      }
    }
  }
}

TEST_P(TierEquivalenceTest, OnlineTrajectoryMatchesMaskPath) {
  auto simulator = make_sim();
  for (auto* make : {&workloads::make_mg_model,
                     &workloads::make_bt_model}) {
    const auto app = (*make)(simulator);
    const auto w = legacy_of(app);
    const double budget =
        simulator.machine().capacity_of_kind(topo::PoolKind::HBM);
    const auto reference = legacy_online(simulator, w, budget,
                                         /*patience=*/3,
                                         /*max_iterations=*/200);

    const auto outcome = tuner::Session::on(simulator)
                             .workload(*app.workload)
                             .context(app.context)
                             .strategy("online")
                             .run();
    EXPECT_EQ(outcome.chosen_mask, reference.final_mask)
        << app.workload->name();
    EXPECT_EQ(outcome.chosen_time, reference.final_time);
    EXPECT_EQ(outcome.baseline_time, reference.baseline_time);
    // Trajectory entry 0 of the reference is the first trial; the
    // strategy-layer trajectory lists exactly the same tried masks, times
    // and verdicts in the same order.
    ASSERT_EQ(outcome.trajectory.size(), reference.trajectory.size());
    for (std::size_t i = 0; i < reference.trajectory.size(); ++i) {
      EXPECT_EQ(outcome.trajectory[i].mask, reference.trajectory[i].tried)
          << app.workload->name() << " step " << i;
      EXPECT_EQ(outcome.trajectory[i].observed_time,
                reference.trajectory[i].observed_time);
      EXPECT_EQ(outcome.trajectory[i].accepted,
                reference.trajectory[i].kept);
    }
  }
}

TEST_P(TierEquivalenceTest, EstimatorGuidedMatchesMaskPath) {
  auto simulator = make_sim();
  for (auto* make : {&workloads::make_mg_model,
                     &workloads::make_bt_model}) {
    const auto app = (*make)(simulator);
    const auto w = legacy_of(app);
    const double cap =
        simulator.machine().capacity_of_kind(topo::PoolKind::HBM);
    const auto reference =
        legacy_guided(simulator, w, /*reps=*/2, /*top_k=*/3, cap);

    for (const int jobs : {1, 4}) {
      const auto outcome = tuner::Session::on(simulator)
                               .workload(*app.workload)
                               .context(app.context)
                               .strategy("estimator")
                               .repetitions(2)
                               .top_k(3)
                               .jobs(jobs)
                               .run();
      EXPECT_EQ(outcome.chosen_mask, reference.chosen_mask)
          << app.workload->name() << " jobs " << jobs;
      EXPECT_EQ(outcome.chosen_time, reference.chosen_time);
      ASSERT_EQ(outcome.trajectory.size(), reference.trajectory.size());
      for (std::size_t i = 0; i < reference.trajectory.size(); ++i) {
        EXPECT_EQ(outcome.trajectory[i].mask,
                  reference.trajectory[i].tried)
            << app.workload->name() << " step " << i << " jobs " << jobs;
        EXPECT_EQ(outcome.trajectory[i].observed_time,
                  reference.trajectory[i].observed_time);
        EXPECT_EQ(outcome.trajectory[i].accepted,
                  reference.trajectory[i].kept);
      }
    }
  }
}

TEST_P(TierEquivalenceTest, BudgetedRunsMatchMaskPath) {
  // A constrained HBM budget must prune exactly the same configurations.
  auto simulator = make_sim();
  const auto app = workloads::make_mg_model(simulator);
  const auto w = legacy_of(app);
  const double cap = 10.0 * GB;

  const auto reference =
      legacy_guided(simulator, w, /*reps=*/1, /*top_k=*/3, cap);
  const auto guided = tuner::Session::on(simulator)
                          .workload(*app.workload)
                          .context(app.context)
                          .strategy("estimator")
                          .repetitions(1)
                          .top_k(3)
                          .budget_gb(10.0)
                          .run();
  EXPECT_EQ(guided.chosen_mask, reference.chosen_mask);
  EXPECT_EQ(guided.chosen_time, reference.chosen_time);

  const auto online_reference =
      legacy_online(simulator, w, cap, /*patience=*/3,
                    /*max_iterations=*/200);
  const auto online = tuner::Session::on(simulator)
                          .workload(*app.workload)
                          .context(app.context)
                          .strategy("online")
                          .budget_gb(10.0)
                          .run();
  EXPECT_EQ(online.chosen_mask, online_reference.final_mask);
  EXPECT_EQ(online.chosen_time, online_reference.final_time);
}

INSTANTIATE_TEST_SUITE_P(NoiseFree, TierEquivalenceTest,
                         ::testing::Values(0.0));
INSTANTIATE_TEST_SUITE_P(Noisy, TierEquivalenceTest,
                         ::testing::Values(0.03));

}  // namespace
}  // namespace hmpt
