// Tests for hmpt::sample — IBS/PEBS-like sampling and attribution.
#include <gtest/gtest.h>

#include "common/error.h"
#include "pools/page_map.h"
#include "sample/sampler.h"

namespace hmpt::sample {
namespace {

pools::PageMap two_range_map() {
  pools::PageMap map;
  map.insert(0x10000, 0x10000, 0, 1);  // tag 1 on node 0
  map.insert(0x30000, 0x10000, 4, 2);  // tag 2 on node 4
  return map;
}

TEST(SamplerTest, SystematicKeepsEveryNth) {
  IbsSampler sampler({100, SamplingMode::Systematic, 1});
  const auto map = two_range_map();
  for (int i = 0; i < 10'000; ++i)
    sampler.feed({0x10000 + static_cast<std::uintptr_t>(i % 256) * 64,
                  false, 0.0},
                 map);
  const auto report = sampler.report();
  EXPECT_EQ(report.events_seen, 10'000u);
  EXPECT_EQ(report.samples_kept, 100u);
  EXPECT_EQ(report.samples_unattributed, 0u);
  EXPECT_DOUBLE_EQ(report.density(1), 1.0);
}

TEST(SamplerTest, PoissonKeepsRoughlyExpectedCount) {
  IbsSampler sampler({100, SamplingMode::Poisson, 7});
  const auto map = two_range_map();
  for (int i = 0; i < 100'000; ++i)
    sampler.feed({0x10080, false, 0.0}, map);
  const auto report = sampler.report();
  EXPECT_NEAR(static_cast<double>(report.samples_kept), 1000.0, 150.0);
}

TEST(SamplerTest, DensityMatchesTrafficSplit) {
  IbsSampler sampler({64, SamplingMode::Poisson, 3});
  const auto map = two_range_map();
  // 75 % of accesses into tag 1, 25 % into tag 2.
  for (int i = 0; i < 200'000; ++i) {
    const bool hot = (i % 4) != 3;
    const std::uintptr_t base = hot ? 0x10000 : 0x30000;
    sampler.feed({base + static_cast<std::uintptr_t>(i % 512) * 64, false,
                  0.0},
                 map);
  }
  const auto report = sampler.report();
  EXPECT_NEAR(report.density(1), 0.75, 0.03);
  EXPECT_NEAR(report.density(2), 0.25, 0.03);
  // Node attribution travels with the range.
  for (const auto& tag : report.per_tag) {
    if (tag.tag == 1) EXPECT_EQ(tag.node, 0);
    if (tag.tag == 2) EXPECT_EQ(tag.node, 4);
  }
}

TEST(SamplerTest, UnattributedSamplesCounted) {
  IbsSampler sampler({1, SamplingMode::Systematic, 1});
  const auto map = two_range_map();
  sampler.feed({0xdead0000, false, 0.0}, map);  // outside all ranges
  sampler.feed({0x10010, false, 0.0}, map);
  const auto report = sampler.report();
  EXPECT_EQ(report.samples_kept, 2u);
  EXPECT_EQ(report.samples_unattributed, 1u);
  EXPECT_DOUBLE_EQ(report.density(1), 1.0);  // of attributed samples
}

TEST(SamplerTest, WriteFractionAndLatencyAggregates) {
  IbsSampler sampler({1, SamplingMode::Systematic, 1});
  const auto map = two_range_map();
  sampler.feed({0x10000, true, 100e-9}, map);
  sampler.feed({0x10040, false, 50e-9}, map);
  const auto report = sampler.report();
  ASSERT_EQ(report.per_tag.size(), 1u);
  EXPECT_DOUBLE_EQ(report.per_tag[0].write_fraction(), 0.5);
  EXPECT_NEAR(report.per_tag[0].mean_latency(), 75e-9, 1e-12);
}

TEST(SamplerTest, SyntheticFeedMatchesExpectedRate) {
  IbsSampler sampler({1000, SamplingMode::Systematic, 1});
  sampler.feed_synthetic(7, 2, 1'000'000, 0.25, 80e-9);
  const auto report = sampler.report();
  EXPECT_EQ(report.samples_of(7), 1000u);
  ASSERT_EQ(report.per_tag.size(), 1u);
  EXPECT_NEAR(report.per_tag[0].write_fraction(), 0.25, 1e-9);
  EXPECT_EQ(report.per_tag[0].node, 2);
}

TEST(SamplerTest, SyntheticPoissonIsNoisyButUnbiased) {
  double total = 0.0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    IbsSampler sampler({1000, SamplingMode::Poisson, seed});
    sampler.feed_synthetic(1, 0, 1'000'000, 0.0, 0.0);
    total += static_cast<double>(sampler.report().samples_of(1));
  }
  EXPECT_NEAR(total / 20.0, 1000.0, 60.0);
}

TEST(SamplerTest, ResetClearsEverything) {
  IbsSampler sampler({1, SamplingMode::Systematic, 1});
  const auto map = two_range_map();
  sampler.feed({0x10000, false, 0.0}, map);
  sampler.reset();
  const auto report = sampler.report();
  EXPECT_EQ(report.events_seen, 0u);
  EXPECT_EQ(report.samples_kept, 0u);
  EXPECT_TRUE(report.per_tag.empty());
}

TEST(SamplerTest, PeriodOneSystematicKeepsEverything) {
  IbsSampler sampler({1, SamplingMode::Systematic, 5});
  const auto map = two_range_map();
  for (int i = 0; i < 1000; ++i) sampler.feed({0x10000, false, 0.0}, map);
  EXPECT_EQ(sampler.report().samples_kept, 1000u);
}

TEST(SamplerTest, PeriodOnePoissonKeepsMost) {
  // Poisson gaps are clamped at >= 1 event, so a period-1 sampler keeps a
  // large majority but not all (the clamp skews the mean gap above 1).
  IbsSampler sampler({1, SamplingMode::Poisson, 5});
  const auto map = two_range_map();
  for (int i = 0; i < 1000; ++i) sampler.feed({0x10000, false, 0.0}, map);
  EXPECT_GT(sampler.report().samples_kept, 600u);
  EXPECT_LE(sampler.report().samples_kept, 1000u);
}

TEST(SamplerTest, InvalidConfigsThrow) {
  EXPECT_THROW(IbsSampler({0, SamplingMode::Poisson, 1}), hmpt::Error);
  IbsSampler sampler({16, SamplingMode::Systematic, 1});
  EXPECT_THROW(sampler.feed_synthetic(1, 0, 100, 1.5, 0.0), hmpt::Error);
}

TEST(SampleReportTest, DensityOfUnknownTagIsZero) {
  IbsSampler sampler({1, SamplingMode::Systematic, 1});
  const auto map = two_range_map();
  sampler.feed({0x10000, false, 0.0}, map);
  EXPECT_DOUBLE_EQ(sampler.report().density(99), 0.0);
}

}  // namespace
}  // namespace hmpt::sample
