// Property-based tests: invariants that must hold across randomly drawn
// parameters — solver monotonicity, arena safety under random workloads,
// page-map/registry consistency, estimator identities, planner optimality.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "core/planner.h"
#include "core/summary.h"
#include "pools/arena.h"
#include "pools/pool_allocator.h"
#include "simmem/simulator.h"
#include "workloads/app_models.h"

namespace hmpt {
namespace {

using topo::PoolKind;

// ------------------------------------------------------- solver properties
class SolverProperty : public ::testing::TestWithParam<int> {
 protected:
  sim::MachineSimulator sim_ = sim::MachineSimulator::paper_platform();

  /// Draw a random multi-phase trace over `groups` groups.
  sim::PhaseTrace random_trace(Rng& rng, int groups) {
    sim::PhaseTrace trace;
    const int phases = 1 + static_cast<int>(rng.next_below(4));
    for (int p = 0; p < phases; ++p) {
      sim::KernelPhase phase;
      phase.name = "phase" + std::to_string(p);
      const int streams = 1 + static_cast<int>(rng.next_below(
                                  static_cast<std::uint64_t>(groups)));
      for (int s = 0; s < streams; ++s) {
        sim::StreamAccess access;
        access.group = static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(groups)));
        access.bytes_read = (1.0 + rng.next_double() * 30.0) * GB;
        if (rng.next_double() < 0.3)
          access.bytes_written = rng.next_double() * 10.0 * GB;
        const double pattern_draw = rng.next_double();
        access.pattern = pattern_draw < 0.7
                             ? sim::AccessPattern::Sequential
                             : (pattern_draw < 0.9
                                    ? sim::AccessPattern::Random
                                    : sim::AccessPattern::PointerChase);
        access.working_set_bytes = 4.0 * GB;
        phase.streams.push_back(access);
      }
      if (rng.next_double() < 0.5) phase.flops = rng.next_double() * 1e13;
      trace.phases.push_back(phase);
    }
    return trace;
  }
};

TEST_P(SolverProperty, TimesAreAlwaysPositiveAndFinite) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int groups = 3;
  const auto trace = random_trace(rng, groups);
  const auto ctx = sim_.full_machine();
  for (std::uint32_t mask = 0; mask < (1u << groups); ++mask) {
    std::vector<PoolKind> pools(groups, PoolKind::DDR);
    for (int g = 0; g < groups; ++g)
      if (mask & (1u << g)) pools[static_cast<std::size_t>(g)] =
          PoolKind::HBM;
    const double t =
        sim_.time_trace(trace, sim::Placement(pools), ctx);
    EXPECT_GT(t, 0.0) << mask;
    EXPECT_TRUE(std::isfinite(t)) << mask;
  }
}

TEST_P(SolverProperty, MoreThreadsNeverSlower) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const auto trace = random_trace(rng, 3);
  const auto placement = sim::Placement::uniform(3, PoolKind::HBM);
  double prev = 1e300;
  for (int threads : {12, 24, 48, 96}) {
    const double t = sim_.time_trace(trace, placement, {threads, 8});
    EXPECT_LE(t, prev * (1.0 + 1e-9)) << threads;
    prev = t;
  }
}

TEST_P(SolverProperty, SequentialAllHbmNeverSlowerThanAllDdr) {
  // Bandwidth-only traffic: the all-HBM placement is a uniform-ratio
  // improvement over all-DDR. (Moving *one* group into an already
  // bottlenecked HBM pool may legitimately hurt — using both pools'
  // aggregate bandwidth is exactly the paper's max > HBM-only effect —
  // so monotonicity only holds for the uniform endpoints.)
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 2000);
  sim::PhaseTrace trace;
  sim::KernelPhase phase;
  for (int g = 0; g < 3; ++g) {
    sim::StreamAccess access;
    access.group = g;
    access.bytes_read = (1.0 + rng.next_double() * 30.0) * GB;
    access.pattern = sim::AccessPattern::Sequential;
    phase.streams.push_back(access);
  }
  trace.phases.push_back(phase);
  const auto ctx = sim_.full_machine();
  const double t_ddr = sim_.time_trace(
      trace, sim::Placement::uniform(3, PoolKind::DDR), ctx);
  const double t_hbm = sim_.time_trace(
      trace, sim::Placement::uniform(3, PoolKind::HBM), ctx);
  EXPECT_LE(t_hbm, t_ddr * (1.0 + 1e-9));
}

TEST_P(SolverProperty, SingleGroupTracePrefersHbm) {
  // With only one group there is no pool-sharing interaction: moving the
  // whole (read-only sequential) working set to HBM always helps.
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 3000);
  sim::PhaseTrace trace;
  sim::KernelPhase phase;
  sim::StreamAccess access;
  access.group = 0;
  access.bytes_read = (1.0 + rng.next_double() * 50.0) * GB;
  access.pattern = sim::AccessPattern::Sequential;
  phase.streams.push_back(access);
  trace.phases.push_back(phase);
  const auto ctx = sim_.full_machine();
  const double t_ddr = sim_.time_trace(
      trace, sim::Placement::uniform(1, PoolKind::DDR), ctx);
  const double t_hbm = sim_.time_trace(
      trace, sim::Placement::uniform(1, PoolKind::HBM), ctx);
  EXPECT_LT(t_hbm, t_ddr);
}

TEST_P(SolverProperty, MixedPlacementCanBeatHbmOnly) {
  // The aggregate-bandwidth effect exists in the model: with one heavy and
  // one light group, keeping the light group in DDR is at least as good as
  // all-HBM (both pools stream concurrently).
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 4000);
  sim::PhaseTrace trace;
  sim::KernelPhase phase;
  sim::StreamAccess heavy, light;
  heavy.group = 0;
  heavy.bytes_read = 30.0 * GB;
  light.group = 1;
  light.bytes_read = (0.5 + rng.next_double() * 2.0) * GB;
  heavy.pattern = light.pattern = sim::AccessPattern::Sequential;
  phase.streams = {heavy, light};
  trace.phases.push_back(phase);
  const auto ctx = sim_.full_machine();
  const double t_hbm = sim_.time_trace(
      trace, sim::Placement::uniform(2, PoolKind::HBM), ctx);
  const double t_mixed = sim_.time_trace(
      trace, sim::Placement({PoolKind::HBM, PoolKind::DDR}), ctx);
  EXPECT_LE(t_mixed, t_hbm * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(RandomTraces, SolverProperty,
                         ::testing::Range(0, 12));

// -------------------------------------------------------- arena properties
class ArenaProperty : public ::testing::TestWithParam<int> {};

TEST_P(ArenaProperty, RandomAllocFreeNeverCorruptsAccounting) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  pools::PoolArena arena(1u << 22, 1u << 16);
  std::map<void*, std::pair<std::size_t, unsigned char>> live;
  std::size_t live_bytes = 0;

  for (int step = 0; step < 2000; ++step) {
    const bool do_alloc = live.empty() || rng.next_double() < 0.55;
    if (do_alloc) {
      const std::size_t size =
          1 + static_cast<std::size_t>(rng.next_below(4096));
      void* p = arena.allocate(size);
      if (p == nullptr) continue;  // capacity hit: fine
      const auto fill = static_cast<unsigned char>(rng.next_below(256));
      std::memset(p, fill, size);
      ASSERT_EQ(live.count(p), 0u);  // no overlap with live blocks
      live[p] = {size, fill};
      live_bytes += size;
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.next_below(live.size())));
      // Contents survive neighbouring alloc/free traffic.
      const auto* bytes = static_cast<const unsigned char*>(it->first);
      for (std::size_t i = 0; i < it->second.first;
           i += std::max<std::size_t>(1, it->second.first / 16))
        ASSERT_EQ(bytes[i], it->second.second);
      arena.deallocate(it->first);
      live_bytes -= it->second.first;
      live.erase(it);
    }
    ASSERT_EQ(arena.stats().allocated, live_bytes);
    ASSERT_EQ(arena.stats().num_allocs, live.size());
  }
  for (const auto& [p, meta] : live) arena.deallocate(p);
  EXPECT_EQ(arena.stats().allocated, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArenaProperty, ::testing::Range(0, 6));

// -------------------------------------------------- allocator + page map
class AllocatorProperty : public ::testing::TestWithParam<int> {};

TEST_P(AllocatorProperty, PageMapAlwaysResolvesLivePointers) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  auto machine = topo::xeon_max_9468_single_flat_snc4();
  pools::PoolAllocator alloc(machine);
  std::vector<std::pair<void*, std::size_t>> live;

  for (int step = 0; step < 600; ++step) {
    if (live.empty() || rng.next_double() < 0.6) {
      const std::size_t size =
          64 + static_cast<std::size_t>(rng.next_below(1u << 16));
      const auto kind =
          rng.next_double() < 0.5 ? PoolKind::DDR : PoolKind::HBM;
      const auto a = alloc.allocate(size, kind);
      ASSERT_NE(a.ptr, nullptr);
      live.emplace_back(a.ptr, size);
    } else {
      const auto idx = rng.next_below(live.size());
      alloc.deallocate(live[idx].first);
      live.erase(live.begin() + static_cast<long>(idx));
    }
  }

  const auto map = alloc.page_map_snapshot();
  for (const auto& [ptr, size] : live) {
    const auto addr = reinterpret_cast<std::uintptr_t>(ptr);
    // First, middle and last byte all resolve to the same range.
    for (const std::uintptr_t probe :
         {addr, addr + size / 2, addr + size - 1}) {
      const auto hit = map.lookup(probe);
      ASSERT_TRUE(hit.has_value());
      EXPECT_EQ(hit->begin, addr);
    }
  }
  EXPECT_EQ(map.size(), live.size());
  for (const auto& [ptr, size] : live) alloc.deallocate(ptr);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorProperty, ::testing::Range(0, 5));

// ------------------------------------------------- estimator / sweep props
class SweepProperty : public ::testing::TestWithParam<int> {
 protected:
  sim::MachineSimulator sim_ = sim::MachineSimulator::paper_platform();
};

TEST_P(SweepProperty, EstimatorExactOnSingletonsAndBaseline) {
  const auto suite = workloads::paper_benchmark_suite(sim_);
  const auto& app = suite[static_cast<std::size_t>(GetParam()) %
                          suite.size()];
  std::vector<double> bytes;
  for (const auto& g : app.workload->groups()) bytes.push_back(g.bytes);
  tuner::ConfigSpace space(bytes);
  tuner::ExperimentRunner runner(sim_, app.context, {1, true});
  const auto sweep = runner.sweep(*app.workload, space);
  const tuner::LinearEstimator est(sweep);
  EXPECT_DOUBLE_EQ(est.estimate(0), 1.0);
  for (int g = 0; g < sweep.num_groups; ++g) {
    const auto mask = tuner::ConfigMask{1} << g;
    EXPECT_NEAR(est.estimate(mask), sweep.of(mask).speedup, 1e-9);
  }
}

TEST_P(SweepProperty, SummaryInvariantsHold) {
  const auto suite = workloads::paper_benchmark_suite(sim_);
  const auto& app = suite[static_cast<std::size_t>(GetParam()) %
                          suite.size()];
  std::vector<double> bytes;
  for (const auto& g : app.workload->groups()) bytes.push_back(g.bytes);
  tuner::ConfigSpace space(bytes);
  tuner::ExperimentRunner runner(sim_, app.context, {1, true});
  const auto sweep = runner.sweep(*app.workload, space);
  const auto summary = tuner::summarize(sweep);

  // Max speedup dominates every configuration.
  for (const auto& cfg : sweep.configs)
    EXPECT_LE(cfg.speedup, summary.max_speedup * (1.0 + 1e-12));
  // The 90 % config is genuinely above threshold and minimal in usage.
  EXPECT_GE(summary.usage90_speedup, summary.threshold90 - 1e-9);
  for (const auto& cfg : sweep.configs) {
    if (cfg.speedup + 1e-12 >= summary.threshold90)
      EXPECT_GE(cfg.hbm_usage, summary.usage90 - 1e-12);
  }
  // Threshold sits between baseline and max.
  EXPECT_GE(summary.threshold90, 1.0);
  EXPECT_LE(summary.threshold90, summary.max_speedup + 1e-12);
}

TEST_P(SweepProperty, ParetoFrontDominatesAllConfigs) {
  const auto suite = workloads::paper_benchmark_suite(sim_);
  const auto& app = suite[static_cast<std::size_t>(GetParam()) %
                          suite.size()];
  std::vector<double> bytes;
  for (const auto& g : app.workload->groups()) bytes.push_back(g.bytes);
  tuner::ConfigSpace space(bytes);
  tuner::ExperimentRunner runner(sim_, app.context, {1, true});
  const auto sweep = runner.sweep(*app.workload, space);
  tuner::CapacityPlanner planner(sweep, space);
  const auto front = planner.pareto_front();
  // Every configuration is dominated by some front point.
  for (const auto& cfg : sweep.configs) {
    const double cfg_bytes = space.hbm_bytes(cfg.mask);
    bool dominated = false;
    for (const auto& p : front) {
      if (p.hbm_bytes <= cfg_bytes * (1.0 + 1e-12) &&
          p.speedup >= cfg.speedup * (1.0 - 1e-12)) {
        dominated = true;
        break;
      }
    }
    EXPECT_TRUE(dominated) << cfg.mask;
  }
  // best_under_budget agrees with a brute-force scan at random budgets.
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 31);
  for (int trial = 0; trial < 5; ++trial) {
    const double budget = rng.next_double() * space.total_bytes();
    const auto best = planner.best_under_budget(budget);
    double brute = 0.0;
    for (const auto& cfg : sweep.configs)
      if (space.hbm_bytes(cfg.mask) <= budget)
        brute = std::max(brute, cfg.speedup);
    EXPECT_NEAR(best.speedup, brute, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, SweepProperty, ::testing::Range(0, 7));

// ------------------------------------------------------ sampling properties
class SamplingProperty : public ::testing::TestWithParam<int> {};

TEST_P(SamplingProperty, DensitiesSumToOneOverAttributedSamples) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 101);
  pools::PageMap map;
  const int ranges = 4;
  for (int r = 0; r < ranges; ++r)
    map.insert(0x100000u * static_cast<std::uintptr_t>(r + 1), 0x8000,
               r % 2, static_cast<std::uint64_t>(r + 1));
  sample::IbsSampler sampler(
      {32, sample::SamplingMode::Poisson,
       static_cast<std::uint64_t>(GetParam())});
  for (int i = 0; i < 50'000; ++i) {
    const auto r = rng.next_below(ranges);
    const auto offset = rng.next_below(0x8000);
    sampler.feed({0x100000u * static_cast<std::uintptr_t>(r + 1) + offset,
                  false, 0.0},
                 map);
  }
  const auto report = sampler.report();
  double total = 0.0;
  for (const auto& tag : report.per_tag) total += report.density(tag.tag);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(report.samples_unattributed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplingProperty, ::testing::Range(0, 5));

}  // namespace
}  // namespace hmpt
