// End-to-end tests of the full pipeline the paper's tool implements
// (Fig. 6): run an application through the SHIM allocator, sample its
// accesses IBS-style, aggregate per call site, filter/group allocations,
// sweep the placement space on the simulated platform, pick a plan, and
// re-run the application under that plan.
#include <gtest/gtest.h>

#include "common/units.h"
#include "core/grouping.h"
#include "core/planner.h"
#include "core/report.h"
#include "core/summary.h"
#include "simmem/simulator.h"
#include "workloads/kwave.h"
#include "workloads/npb_kernels.h"
#include "workloads/stream.h"

namespace hmpt {
namespace {

using topo::PoolKind;

/// Workload adapter over a recorded mini-kernel trace + registry groups.
class RecordedWorkload final : public workloads::Workload {
 public:
  RecordedWorkload(std::string name,
                   std::vector<workloads::GroupInfo> groups,
                   sim::PhaseTrace trace)
      : name_(std::move(name)),
        groups_(std::move(groups)),
        trace_(std::move(trace)) {}
  std::string name() const override { return name_; }
  std::vector<workloads::GroupInfo> groups() const override {
    return groups_;
  }
  sim::PhaseTrace trace() const override { return trace_; }

 private:
  std::string name_;
  std::vector<workloads::GroupInfo> groups_;
  sim::PhaseTrace trace_;
};

class PipelineTest : public ::testing::Test {
 protected:
  topo::Machine machine_ = topo::xeon_max_9468_duo_flat_snc4();
  pools::PoolAllocator pool_{machine_};
  shim::ShimAllocator shim_{pool_};
  sim::MachineSimulator sim_ = sim::MachineSimulator::paper_platform();
};

TEST_F(PipelineTest, MiniMgProfileSweepPlanReplay) {
  // ---- Step 1: profiling run through the shim with IBS sampling.
  sample::IbsSampler sampler({512, sample::SamplingMode::Poisson, 17});
  workloads::MiniMgConfig config;
  config.n = 16;
  config.v_cycles = 2;
  const auto profile = run_mini_mg(shim_, config, &sampler);
  ASSERT_TRUE(profile.converging);

  // ---- Step 2: per-site usage + densities from the sampling report.
  const auto usage = shim_.registry().site_usage(shim_.sites());
  ASSERT_EQ(usage.size(), 3u);  // mg::u, mg::r, mg::v
  const auto densities =
      tuner::site_densities(shim_.registry(), shim_.sites(),
                            sampler.report());
  // u and r must dominate the sampled accesses, as in Fig. 7a.
  const int site_u = shim_.sites().find_by_label("mg::u");
  const int site_v = shim_.sites().find_by_label("mg::v");
  ASSERT_GE(site_u, 0);
  ASSERT_GE(site_v, 0);
  EXPECT_GT(densities[static_cast<std::size_t>(site_u)], 0.3);
  EXPECT_LT(densities[static_cast<std::size_t>(site_v)], 0.2);

  // ---- Step 3: filter + group (everything here is significant).
  tuner::GroupingOptions options;
  options.min_bytes = 0.0;
  options.max_groups = 8;
  const auto groups = tuner::build_groups(usage, densities, options);
  ASSERT_EQ(groups.size(), 3u);

  // ---- Step 4: sweep the recorded trace on the simulated platform.
  std::vector<workloads::GroupInfo> infos;
  std::vector<double> bytes;
  for (const auto& g : groups) {
    infos.push_back({g.label, g.bytes});
    bytes.push_back(g.bytes);
  }
  // Group ids in the recorded trace follow allocation order (u, r, v);
  // build_groups returns density order. Remap trace groups to that order.
  auto trace = profile.trace;
  std::vector<int> remap(3);
  const std::vector<std::string> alloc_order = {"mg::u", "mg::r", "mg::v"};
  for (int old_id = 0; old_id < 3; ++old_id) {
    for (std::size_t new_id = 0; new_id < groups.size(); ++new_id)
      if (groups[new_id].label == alloc_order[static_cast<std::size_t>(
              old_id)])
        remap[static_cast<std::size_t>(old_id)] = static_cast<int>(new_id);
  }
  for (auto& phase : trace.phases)
    for (auto& s : phase.streams)
      s.group = remap[static_cast<std::size_t>(s.group)];

  RecordedWorkload workload("mini-mg", infos, trace);
  tuner::ConfigSpace space(bytes);
  tuner::ExperimentRunner runner(sim_, sim_.full_machine(), {2, true});
  const auto sweep = runner.sweep(workload, space);
  const auto summary = tuner::summarize(sweep);
  EXPECT_GT(summary.max_speedup, 1.5);  // mini MG is bandwidth-bound

  // ---- Step 5: materialise the best-under-budget plan and replay.
  tuner::CapacityPlanner planner(sweep, space);
  const auto choice = planner.best_under_budget(space.total_bytes());
  const auto plan =
      tuner::to_placement_plan(groups, choice.mask, shim_.sites());

  shim_.set_plan(plan);
  pools::PoolAllocator fresh_pool(machine_);
  shim::ShimAllocator replay_shim(fresh_pool, plan);
  const auto replay = run_mini_mg(replay_shim, config);
  EXPECT_TRUE(replay.converging);

  // Allocations from sites in the chosen mask landed in HBM.
  for (const auto& rec : replay_shim.registry().all_records()) {
    const auto hash = replay_shim.sites().site(rec.site).hash;
    const bool should_be_hbm = plan.kind_for(hash) == PoolKind::HBM;
    EXPECT_EQ(rec.kind == PoolKind::HBM, should_be_hbm);
  }
}

TEST_F(PipelineTest, PlanSerialisationSurvivesDriverRoundTrip) {
  // The driver script writes the plan to disk between runs; emulate that.
  workloads::MiniIsConfig config;
  config.num_keys = 1u << 12;
  config.max_key = 1u << 8;
  run_mini_is(shim_, config);
  const auto usage = shim_.registry().site_usage(shim_.sites());
  std::vector<double> densities(usage.size(), 0.25);
  const auto groups = tuner::build_groups(usage, densities, {0.0, 8});

  const auto plan =
      tuner::to_placement_plan(groups, 0b11, shim_.sites());
  const auto restored = shim::PlacementPlan::parse(plan.serialize());
  for (const auto& g : groups)
    for (int site : g.sites) {
      const auto hash = shim_.sites().site(site).hash;
      EXPECT_EQ(restored.kind_for(hash), plan.kind_for(hash));
    }
}

TEST_F(PipelineTest, KWaveCustomGroupingFlowsThroughSweep) {
  // k-Wave: vector fields folded into one group by label (Sec. IV-B).
  sample::IbsSampler sampler({256, sample::SamplingMode::Poisson, 5});
  workloads::KWaveConfig config;
  config.n = 8;
  config.steps = 2;
  const auto result = run_mini_kwave(shim_, config, &sampler);
  ASSERT_TRUE(result.finite);

  const auto usage = shim_.registry().site_usage(shim_.sites());
  const auto densities = tuner::site_densities(
      shim_.registry(), shim_.sites(), sampler.report());
  const auto groups = tuner::build_groups_by_labels(
      usage, densities,
      {{"kwave::fft_tmp"}, {"kwave::u_vec"}, {"kwave::p", "kwave::rho"}});
  ASSERT_EQ(groups.size(), 4u);  // three sets + rest (kspace)
  EXPECT_EQ(groups[0].label, "kwave::fft_tmp");
  // The complex FFT temporaries carry a major share of sampled accesses
  // (the shim instruments pack/unpack traffic, not the raw butterflies,
  // so the share is lower than the trace-level fraction).
  EXPECT_GT(groups[0].access_density, 0.2);

  std::vector<double> bytes;
  for (const auto& g : groups) bytes.push_back(g.bytes);
  tuner::ConfigSpace space(bytes);
  RecordedWorkload workload(
      "mini-kwave",
      [&] {
        std::vector<workloads::GroupInfo> infos;
        for (const auto& g : groups) infos.push_back({g.label, g.bytes});
        return infos;
      }(),
      [&] {
        // Remap the canonical 5-group kwave trace onto the custom groups:
        // p(0)/rho(1) -> 2, u_vec(2) -> 1, fft_tmp(3) -> 0, kspace(4) -> 3.
        auto trace = result.trace;
        const int remap[5] = {2, 2, 1, 0, 3};
        for (auto& phase : trace.phases)
          for (auto& s : phase.streams)
            s.group = remap[s.group];
        return trace;
      }());
  tuner::ExperimentRunner runner(sim_, sim_.full_machine(), {1, true});
  const auto sweep = runner.sweep(workload, space);
  const auto summary = tuner::summarize(sweep);
  EXPECT_GE(summary.max_speedup, 1.0);
  EXPECT_LE(summary.usage90, 1.0);
}

TEST_F(PipelineTest, SpilledAllocationsAreFlaggedEndToEnd) {
  // An HBM-everything plan on a tiny-HBM machine must spill and record it.
  auto tiny = topo::two_pool_testbed(1.0 * GiB, 8.0 * MiB);
  pools::PoolAllocator pool(tiny, pools::OomPolicy::Spill);
  shim::PlacementPlan plan(PoolKind::HBM);
  shim::ShimAllocator shim(pool, plan);
  void* a = shim.allocate_named("big1", 6u << 20);
  void* b = shim.allocate_named("big2", 6u << 20);  // exceeds 8 MiB HBM
  const auto records = shim.registry().all_records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_FALSE(records[0].spilled);
  EXPECT_TRUE(records[1].spilled);
  EXPECT_EQ(records[1].kind, PoolKind::DDR);
  shim.deallocate(a);
  shim.deallocate(b);
}

TEST_F(PipelineTest, StreamWorkloadSweepReproducesFig5Insight) {
  // Sweeping STREAM's three arrays finds the paper's Fig. 5b insight: one
  // input array can stay in DDR at (near-)HBM-only Add performance.
  workloads::StreamWorkload stream(16.0 * GB, 1,
                                   {workloads::StreamKernel::Add});
  tuner::ConfigSpace space({16.0 * GB, 16.0 * GB, 16.0 * GB});
  auto single = sim::MachineSimulator::paper_platform_single();
  tuner::ExperimentRunner runner(single, single.socket_context(12),
                                 {1, true});
  const auto sweep = runner.sweep(stream, space);
  // b+c in HBM, a in DDR (mask 0b110) ~ all-HBM performance.
  EXPECT_GT(sweep.of(0b110).speedup, 0.9 * sweep.all_hbm().speedup);
}

}  // namespace
}  // namespace hmpt
