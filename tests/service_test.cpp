// Tests for the service layer: the bounded Scheduler (dedup, admission
// control, priority dispatch, cancellation, drain) over fake providers,
// byte-identity of daemon-written outcomes with batch campaign runs, the
// latency store, and an in-process Daemon exercised over a real
// Unix-domain socket — including malformed requests and a client that
// disconnects mid-watch.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/workload_registry.h"
#include "common/error.h"
#include "core/outcome_io.h"
#include "service/daemon.h"
#include "service/latency_store.h"
#include "service/protocol.h"
#include "service/provider.h"
#include "service/scheduler.h"
#include "service/socket.h"

namespace hmpt::service {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

/// A fresh store directory per test, removed on scope exit.
class StoreDir {
 public:
  explicit StoreDir(const std::string& name)
      : path_((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path_);
  }
  ~StoreDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Distinct scenarios by varying repetitions (distinct fingerprints).
campaign::Scenario scenario_with_reps(int reps) {
  campaign::Scenario s;
  s.workload = campaign::parse_workload_spec("mg");
  s.platform = "xeon-max";
  s.strategy = "estimator";
  s.repetitions = reps;
  return s;
}

/// Counts run() calls; the resubmit-is-cached assertions hinge on it.
class CountingProvider : public ExecutionProvider {
 public:
  std::string name() const override { return "counting"; }
  tuner::TuningOutcome run(const campaign::Scenario& scenario,
                           const CancelToken&) override {
    ++runs;
    tuner::TuningOutcome outcome;
    outcome.strategy = scenario.strategy;
    outcome.workload = scenario.workload.name;
    outcome.num_groups = 1;
    outcome.speedup = 2.0;
    return outcome;
  }
  std::atomic<int> runs{0};
};

/// Blocks every run() until release() — makes queue states observable.
class GatedProvider : public CountingProvider {
 public:
  std::string name() const override { return "gated"; }
  tuner::TuningOutcome run(const campaign::Scenario& scenario,
                           const CancelToken& token) override {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++entered;
      entered_cv_.notify_all();
      cv_.wait(lock, [this] { return open_; });
    }
    return CountingProvider::run(scenario, token);
  }
  void release() {
    std::lock_guard<std::mutex> lock(mutex_);
    open_ = true;
    cv_.notify_all();
  }
  /// Wait until `n` run() calls are blocked inside the gate.
  void await_entered(int n) {
    std::unique_lock<std::mutex> lock(mutex_);
    entered_cv_.wait(lock, [&] { return entered >= n; });
  }
  int entered = 0;

 private:
  std::mutex mutex_;
  std::condition_variable cv_, entered_cv_;
  bool open_ = false;
};

class FailingProvider : public ExecutionProvider {
 public:
  std::string name() const override { return "failing"; }
  tuner::TuningOutcome run(const campaign::Scenario&,
                           const CancelToken&) override {
    raise("deliberate provider failure");
  }
};

/// Fails the first `failures` run() calls per fingerprint, then behaves
/// like CountingProvider — the retry-loop tests' workhorse.
class FlakyProvider : public CountingProvider {
 public:
  explicit FlakyProvider(int failures) : failures_(failures) {}
  std::string name() const override { return "flaky"; }
  tuner::TuningOutcome run(const campaign::Scenario& scenario,
                           const CancelToken& token) override {
    int attempt = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      attempt = ++attempts_[scenario.fingerprint()];
    }
    if (attempt <= failures_)
      raise("flaky failure on attempt " + std::to_string(attempt));
    return CountingProvider::run(scenario, token);
  }

 private:
  int failures_;
  std::mutex mutex_;
  std::map<std::string, int> attempts_;
};

/// Parks on the job's CancelToken until it expires — a cooperative hang,
/// for deadline tests.
class HangingProvider : public ExecutionProvider {
 public:
  std::string name() const override { return "hanging"; }
  tuner::TuningOutcome run(const campaign::Scenario&,
                           const CancelToken& token) override {
    while (token.sleep_for(3600.0)) {
    }
    token.check();
    raise("hang interrupted without cancel");  // unreachable
  }
};

// --------------------------------------------------------------- scheduler

TEST(SchedulerTest, ExecutesAndPersistsByteIdenticalToBatch) {
  StoreDir daemon_dir("hmpt_sched_store");
  StoreDir batch_dir("hmpt_batch_store");
  const auto scenario = scenario_with_reps(1);

  SimulatorProvider provider;
  Scheduler scheduler(provider, campaign::OutcomeStore(daemon_dir.path()),
                      {});
  scheduler.start();
  const auto client = scheduler.new_client();
  const auto submitted = scheduler.submit(client, scenario);
  EXPECT_EQ(submitted.state, JobState::Queued);
  const auto done = scheduler.wait(scenario.fingerprint());
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->state, JobState::Done);

  // The batch path: same execute, same store serialisation.
  const campaign::OutcomeStore batch_store(batch_dir.path());
  batch_store.save(scenario, campaign::CampaignRunner::execute(scenario));

  const auto read = [](const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
  };
  const auto daemon_bytes =
      read(scheduler.store().path_for(scenario));
  const auto batch_bytes = read(batch_store.path_for(scenario));
  ASSERT_FALSE(daemon_bytes.empty());
  EXPECT_EQ(daemon_bytes, batch_bytes);
}

TEST(SchedulerTest, ResubmitIsServedFromStoreWithZeroExecutions) {
  StoreDir dir("hmpt_sched_resubmit");
  const auto scenario = scenario_with_reps(1);
  CountingProvider provider;
  {
    Scheduler scheduler(provider, campaign::OutcomeStore(dir.path()), {});
    scheduler.start();
    const auto client = scheduler.new_client();
    scheduler.submit(client, scenario);
    scheduler.wait(scenario.fingerprint());
    EXPECT_EQ(provider.runs.load(), 1);

    // Same process: the terminal job answers the resubmit.
    const auto again = scheduler.submit(client, scenario);
    EXPECT_EQ(again.state, JobState::Cached);
    scheduler.shutdown();
  }
  EXPECT_EQ(provider.runs.load(), 1);

  // Fresh scheduler over the same store (daemon restart): still cached.
  Scheduler scheduler(provider, campaign::OutcomeStore(dir.path()), {});
  scheduler.start();
  const auto client = scheduler.new_client();
  const auto hit = scheduler.submit(client, scenario);
  EXPECT_EQ(hit.state, JobState::Cached);
  EXPECT_EQ(provider.runs.load(), 1);
  EXPECT_EQ(scheduler.counts().cached, 1u);
  const auto outcome = scheduler.outcome(scenario.fingerprint());
  ASSERT_TRUE(outcome.has_value());
  EXPECT_DOUBLE_EQ(outcome->speedup, 2.0);
}

TEST(SchedulerTest, InFlightDuplicateAttachesInsteadOfTwinning) {
  StoreDir dir("hmpt_sched_dedup");
  const auto scenario = scenario_with_reps(1);
  GatedProvider provider;
  Scheduler scheduler(provider, campaign::OutcomeStore(dir.path()), {});
  scheduler.start();
  const auto a = scheduler.new_client();
  const auto b = scheduler.new_client();

  scheduler.submit(a, scenario);
  provider.await_entered(1);
  const auto attached = scheduler.submit(b, scenario);
  EXPECT_EQ(attached.state, JobState::Running);

  provider.release();
  scheduler.wait(scenario.fingerprint());
  EXPECT_EQ(provider.runs.load(), 1);  // one execution for two submitters
  EXPECT_EQ(scheduler.counts().done, 1u);
}

TEST(SchedulerTest, PerClientAdmissionCapRejectsWithBusy) {
  StoreDir dir("hmpt_sched_admission");
  GatedProvider provider;
  SchedulerOptions options;
  options.workers = 1;
  options.max_in_flight = 1;
  Scheduler scheduler(provider, campaign::OutcomeStore(dir.path()),
                      options);
  scheduler.start();
  const auto client = scheduler.new_client();

  scheduler.submit(client, scenario_with_reps(1));
  try {
    scheduler.submit(client, scenario_with_reps(2));
    FAIL() << "second submit should exceed max_in_flight=1";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("busy"), std::string::npos);
  }
  // Another client has its own allowance.
  const auto other = scheduler.new_client();
  EXPECT_NO_THROW(scheduler.submit(other, scenario_with_reps(2)));

  provider.release();
  scheduler.drain();
  // After drain the gate is admission itself, not the per-client cap.
  EXPECT_THROW(scheduler.submit(client, scenario_with_reps(3)), Error);
}

TEST(SchedulerTest, GlobalQueueCapacityRejectsWithBusy) {
  StoreDir dir("hmpt_sched_queuecap");
  GatedProvider provider;
  SchedulerOptions options;
  options.workers = 1;
  options.max_queue = 1;
  Scheduler scheduler(provider, campaign::OutcomeStore(dir.path()),
                      options);
  scheduler.start();
  const auto client = scheduler.new_client();

  scheduler.submit(client, scenario_with_reps(1));  // runs (gated)
  provider.await_entered(1);
  scheduler.submit(client, scenario_with_reps(2));  // fills the queue
  try {
    scheduler.submit(client, scenario_with_reps(3));
    FAIL() << "queue is at capacity";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("busy"), std::string::npos);
  }
  provider.release();
  scheduler.drain();
}

TEST(SchedulerTest, DispatchIsPriorityThenFifo) {
  StoreDir dir("hmpt_sched_priority");
  GatedProvider provider;
  SchedulerOptions options;
  options.workers = 1;
  Scheduler scheduler(provider, campaign::OutcomeStore(dir.path()),
                      options);
  scheduler.start();
  const auto client = scheduler.new_client();

  std::vector<std::string> completions;
  std::mutex order_mutex;
  scheduler.subscribe([&](const JobStatus& status) {
    std::lock_guard<std::mutex> lock(order_mutex);
    completions.push_back(status.fingerprint);
  });

  // Block the single worker so the queue orders deterministically.
  const auto gate = scenario_with_reps(1);
  scheduler.submit(client, gate);
  provider.await_entered(1);

  const auto low1 = scenario_with_reps(2);
  const auto low2 = scenario_with_reps(3);
  const auto high = scenario_with_reps(4);
  scheduler.submit(client, low1, /*priority=*/0);
  scheduler.submit(client, low2, /*priority=*/0);
  scheduler.submit(client, high, /*priority=*/5);

  provider.release();
  scheduler.drain();

  ASSERT_EQ(completions.size(), 4u);
  EXPECT_EQ(completions[0], gate.fingerprint());
  EXPECT_EQ(completions[1], high.fingerprint());   // priority first
  EXPECT_EQ(completions[2], low1.fingerprint());   // then FIFO
  EXPECT_EQ(completions[3], low2.fingerprint());
}

TEST(SchedulerTest, CancelRemovesQueuedButNotRunning) {
  StoreDir dir("hmpt_sched_cancel");
  GatedProvider provider;
  SchedulerOptions options;
  options.workers = 1;
  Scheduler scheduler(provider, campaign::OutcomeStore(dir.path()),
                      options);
  scheduler.start();
  const auto client = scheduler.new_client();

  const auto running = scenario_with_reps(1);
  const auto queued = scenario_with_reps(2);
  scheduler.submit(client, running);
  provider.await_entered(1);
  scheduler.submit(client, queued);

  EXPECT_FALSE(scheduler.cancel(running.fingerprint()));  // already running
  EXPECT_TRUE(scheduler.cancel(queued.fingerprint()));
  EXPECT_FALSE(scheduler.cancel(queued.fingerprint()));   // already terminal
  const auto status = scheduler.status(queued.fingerprint());
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::Canceled);

  provider.release();
  scheduler.drain();
  EXPECT_EQ(provider.runs.load(), 1);  // the canceled job never ran
  EXPECT_EQ(scheduler.counts().canceled, 1u);
}

TEST(SchedulerTest, FailedJobRecordsErrorAndResubmitRetries) {
  StoreDir dir("hmpt_sched_failure");
  FailingProvider provider;
  Scheduler scheduler(provider, campaign::OutcomeStore(dir.path()), {});
  scheduler.start();
  const auto client = scheduler.new_client();
  const auto scenario = scenario_with_reps(1);

  scheduler.submit(client, scenario);
  const auto failed = scheduler.wait(scenario.fingerprint());
  ASSERT_TRUE(failed.has_value());
  EXPECT_EQ(failed->state, JobState::Failed);
  EXPECT_NE(failed->error.find("deliberate provider failure"),
            std::string::npos);
  EXPECT_EQ(scheduler.outcome(scenario.fingerprint()), std::nullopt);

  // A failure is not cached: resubmitting re-enqueues.
  const auto retry = scheduler.submit(client, scenario);
  EXPECT_NE(retry.state, JobState::Cached);
  scheduler.wait(scenario.fingerprint());
  EXPECT_EQ(scheduler.counts().failed, 2u);
}

TEST(SchedulerTest, DrainCompletesAllAdmittedWorkAndStopsAdmission) {
  StoreDir dir("hmpt_sched_drain");
  CountingProvider provider;
  SchedulerOptions options;
  options.workers = 2;
  Scheduler scheduler(provider, campaign::OutcomeStore(dir.path()),
                      options);
  scheduler.start();
  const auto client = scheduler.new_client();
  for (int reps = 1; reps <= 6; ++reps)
    scheduler.submit(client, scenario_with_reps(reps));

  scheduler.drain();
  EXPECT_EQ(provider.runs.load(), 6);
  const auto counts = scheduler.counts();
  EXPECT_EQ(counts.done, 6u);
  EXPECT_EQ(counts.queued, 0u);
  EXPECT_EQ(counts.running, 0u);
  EXPECT_TRUE(counts.draining);
  EXPECT_THROW(scheduler.submit(client, scenario_with_reps(7)), Error);
}

TEST(SchedulerTest, CompletionSubscribersSeeEveryTerminalJob) {
  StoreDir dir("hmpt_sched_subs");
  CountingProvider provider;
  Scheduler scheduler(provider, campaign::OutcomeStore(dir.path()), {});
  scheduler.start();
  const auto client = scheduler.new_client();

  std::mutex mutex;
  std::vector<JobState> seen;
  const auto token = scheduler.subscribe([&](const JobStatus& status) {
    std::lock_guard<std::mutex> lock(mutex);
    seen.push_back(status.state);
  });

  scheduler.submit(client, scenario_with_reps(1));
  scheduler.wait(scenario_with_reps(1).fingerprint());
  // A store-served resubmit from a later client also fires an event (a
  // fresh scheduler over the same store, as after a daemon restart).
  scheduler.shutdown();

  Scheduler restarted(provider, campaign::OutcomeStore(dir.path()), {});
  restarted.start();
  std::atomic<int> cached_events{0};
  restarted.subscribe([&](const JobStatus& status) {
    if (status.state == JobState::Cached) ++cached_events;
  });
  restarted.submit(restarted.new_client(), scenario_with_reps(1));
  EXPECT_EQ(cached_events.load(), 1);

  scheduler.unsubscribe(token);
  std::lock_guard<std::mutex> lock(mutex);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], JobState::Done);
}

// ----------------------------------------------------------- retry loop

TEST(SchedulerRetryTest, TransientFailuresRetryToSuccess) {
  StoreDir dir("hmpt_sched_retry_ok");
  FlakyProvider provider(2);  // two failures, then clean
  SchedulerOptions options;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_s = 0.0;
  Scheduler scheduler(provider, campaign::OutcomeStore(dir.path()),
                      options);
  scheduler.start();
  const auto scenario = scenario_with_reps(1);

  scheduler.submit(scheduler.new_client(), scenario);
  const auto done = scheduler.wait(scenario.fingerprint());
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->state, JobState::Done) << done->error;
  EXPECT_EQ(done->attempts, 3);
  EXPECT_EQ(provider.runs.load(), 1);  // the clean run, post-failures
  const auto counts = scheduler.counts();
  EXPECT_EQ(counts.done, 1u);
  EXPECT_EQ(counts.retries, 2u);
  EXPECT_EQ(counts.timeouts, 0u);
  ASSERT_TRUE(scheduler.outcome(scenario.fingerprint()).has_value());
}

TEST(SchedulerRetryTest, ExhaustedBudgetFailsWithTheFullHistory) {
  StoreDir dir("hmpt_sched_retry_fail");
  FailingProvider provider;
  SchedulerOptions options;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_s = 0.0;
  Scheduler scheduler(provider, campaign::OutcomeStore(dir.path()),
                      options);
  scheduler.start();
  const auto scenario = scenario_with_reps(1);

  scheduler.submit(scheduler.new_client(), scenario);
  const auto failed = scheduler.wait(scenario.fingerprint());
  ASSERT_TRUE(failed.has_value());
  EXPECT_EQ(failed->state, JobState::Failed);
  EXPECT_EQ(failed->attempts, 3);
  EXPECT_NE(failed->error.find("after 3 attempts"), std::string::npos);
  EXPECT_NE(failed->error.find("attempt 1: deliberate provider failure"),
            std::string::npos);
  EXPECT_NE(failed->error.find("attempt 3:"), std::string::npos);
  EXPECT_EQ(scheduler.counts().retries, 2u);
}

TEST(SchedulerRetryTest, SingleAttemptKeepsTheRawErrorText) {
  StoreDir dir("hmpt_sched_retry_raw");
  FailingProvider provider;
  Scheduler scheduler(provider, campaign::OutcomeStore(dir.path()), {});
  scheduler.start();
  const auto scenario = scenario_with_reps(1);

  scheduler.submit(scheduler.new_client(), scenario);
  const auto failed = scheduler.wait(scenario.fingerprint());
  ASSERT_TRUE(failed.has_value());
  // Fail-fast default: the pre-retry error format, no attempt framing.
  EXPECT_EQ(failed->error, "deliberate provider failure");
  EXPECT_EQ(failed->attempts, 1);
}

TEST(SchedulerRetryTest, PerJobDeadlineCancelsACooperativeHang) {
  StoreDir dir("hmpt_sched_retry_deadline");
  HangingProvider provider;
  Scheduler scheduler(provider, campaign::OutcomeStore(dir.path()), {});
  scheduler.start();
  const auto scenario = scenario_with_reps(1);

  JobLimits limits;
  limits.deadline_s = 0.05;  // total budget: one short attempt
  scheduler.submit(scheduler.new_client(), scenario, /*priority=*/0,
                   limits);
  const auto failed = scheduler.wait(scenario.fingerprint());
  ASSERT_TRUE(failed.has_value());
  EXPECT_EQ(failed->state, JobState::Failed);
  EXPECT_NE(failed->error.find("timeout:"), std::string::npos);
  EXPECT_EQ(scheduler.counts().timeouts, 1u);
}

TEST(SchedulerRetryTest, DestructionCancelsAnInFlightHangPromptly) {
  StoreDir dir("hmpt_sched_retry_teardown");
  HangingProvider provider;
  SchedulerOptions options;
  options.retry.max_attempts = 5;
  options.retry.initial_backoff_s = 1.0;  // teardown must not wait these out
  const auto start = std::chrono::steady_clock::now();
  {
    Scheduler scheduler(provider, campaign::OutcomeStore(dir.path()),
                        options);
    scheduler.start();
    scheduler.submit(scheduler.new_client(), scenario_with_reps(1));
    // Give the worker a moment to enter the hang, then tear down: the
    // destructor cancels the live attempt token and the backoff sleeps.
    // (shutdown() deliberately drains instead — a deadline-less hang is
    // the destructor's job to break.)
    std::this_thread::sleep_for(50ms);
  }
  const auto took = std::chrono::steady_clock::now() - start;
  EXPECT_LT(took, std::chrono::seconds(30));
}

// ----------------------------------------------------------- latency store

TEST(LatencyStoreTest, RecordsClassesAndEstimates) {
  LatencyStore store;
  EXPECT_DOUBLE_EQ(store.estimate_seconds("a"), 0.0);
  EXPECT_DOUBLE_EQ(store.eta_seconds(10, 2), 0.0);

  for (int i = 0; i < 100; ++i) store.record("a", 1.0);
  for (int i = 0; i < 100; ++i) store.record("b", 3.0);

  EXPECT_NEAR(store.estimate_seconds("a"), 1.0, 1e-9);
  EXPECT_NEAR(store.estimate_seconds("b"), 3.0, 1e-9);
  // Unknown class falls back to the overall median.
  const double unknown = store.estimate_seconds("c");
  EXPECT_GE(unknown, 1.0);
  EXPECT_LE(unknown, 3.0);

  const auto classes = store.snapshot();
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[0].scenario_class, "a");  // ordered by name
  EXPECT_EQ(classes[1].scenario_class, "b");
  EXPECT_EQ(classes[0].latency.count, 100u);

  // 4 jobs over 2 lanes at the overall median = 2 * p50.
  const double eta = store.eta_seconds(4, 2);
  EXPECT_NEAR(eta, 2.0 * store.overall().p50, 1e-9);
  EXPECT_GT(store.eta_seconds(5, 2), eta);  // ceil(5/2) = 3 waves
}

TEST(LatencyStoreTest, CapEvictsLeastRecentlyRecordedClass) {
  LatencyStore store(2);
  EXPECT_EQ(store.class_cap(), 2u);
  store.record("a", 1.0);
  store.record("b", 2.0);
  store.record("a", 1.0);  // refresh a: b becomes least recent
  EXPECT_EQ(store.evictions(), 0u);

  store.record("c", 3.0);  // over the cap: evicts b
  EXPECT_EQ(store.evictions(), 1u);
  auto classes = store.snapshot();
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[0].scenario_class, "a");
  EXPECT_EQ(classes[1].scenario_class, "c");

  // The evicted class estimates from the overall tracker, where its
  // samples stay counted.
  EXPECT_NEAR(store.estimate_seconds("b"), store.overall().p50, 1e-9);
  EXPECT_EQ(store.overall().count, 4u);

  // Re-recording an evicted class re-admits it (evicting the new LRU, a).
  store.record("b", 2.0);
  EXPECT_EQ(store.evictions(), 2u);
  classes = store.snapshot();
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[0].scenario_class, "b");
  EXPECT_EQ(classes[1].scenario_class, "c");
}

TEST(SchedulerTest, LatencyClassCapHoldsUnderADiverseJobStream) {
  StoreDir dir("hmpt_sched_latency_cap");
  SimulatorProvider provider;
  SchedulerOptions options;
  options.max_latency_classes = 1;
  Scheduler scheduler(provider, campaign::OutcomeStore(dir.path()),
                      options);
  scheduler.start();
  const auto client = scheduler.new_client();

  auto estimator = scenario_with_reps(1);
  auto online = scenario_with_reps(1);
  online.strategy = "online";  // a second scenario class
  scheduler.submit(client, estimator);
  scheduler.wait(estimator.fingerprint());
  scheduler.submit(client, online);
  scheduler.wait(online.fingerprint());

  const auto& latency = scheduler.latency();
  EXPECT_EQ(latency.class_cap(), 1u);
  EXPECT_EQ(latency.evictions(), 1u);
  const auto classes = latency.snapshot();
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0].scenario_class, online.label());
  // The evicted class's sample still informs overall/ETA estimates.
  EXPECT_EQ(latency.overall().count, 2u);
}

// ------------------------------------------------------------------ daemon

/// A blocking NDJSON test client over the daemon's real socket.
class TestClient {
 public:
  explicit TestClient(const Endpoint& endpoint)
      : socket_(connect_to(endpoint)), reader_(socket_.fd()) {}

  ServerMessage call(const Request& request) {
    HMPT_REQUIRE(socket_.send_all(request.to_line()), "send failed");
    return read();
  }

  ServerMessage call_raw(const std::string& line) {
    HMPT_REQUIRE(socket_.send_all(line), "send failed");
    return read();
  }

  ServerMessage read() {
    std::string line;
    const auto status = reader_.next(line);
    HMPT_REQUIRE(status == LineReader::Status::Line,
                 "connection closed by daemon");
    return parse_server_message(line);
  }

  Socket& socket() { return socket_; }

 private:
  Socket socket_;
  LineReader reader_;
};

class DaemonTest : public ::testing::Test {
 protected:
  DaemonTest() : store_dir_("hmpt_daemon_test") {}

  DaemonOptions options_for(ExecutionProvider*) {
    DaemonOptions options;
    options.endpoint.unix_path =
        (fs::temp_directory_path() / "hmpt_daemon_test.sock").string();
    options.store_dir = store_dir_.path();
    options.workers = 2;
    return options;
  }

  StoreDir store_dir_;
};

TEST_F(DaemonTest, SubmitStatusResultOverRealSocket) {
  CountingProvider provider;
  Daemon daemon(options_for(&provider), &provider);
  daemon.start();
  TestClient client(daemon.endpoint());

  const auto pong = client.call([] {
    Request r;
    r.op = Op::Ping;
    return r;
  }());
  EXPECT_TRUE(pong.ok);
  EXPECT_EQ(pong.body.at("provider").as_string(), "counting");

  const auto scenario = scenario_with_reps(1);
  Request submit;
  submit.op = Op::Submit;
  submit.scenario = scenario;
  const auto submitted = client.call(submit);
  ASSERT_TRUE(submitted.ok) << submitted.error;
  EXPECT_EQ(submitted.body.at("jobs")
                .as_array()
                .at(0)
                .at("fingerprint")
                .as_string(),
            scenario.fingerprint());

  Request result;
  result.op = Op::Result;
  result.fingerprint = scenario.fingerprint();
  result.wait = true;
  const auto reply = client.call(result);
  ASSERT_TRUE(reply.ok) << reply.error;
  const auto outcome = tuner::outcome_from_json(reply.body.at("outcome"));
  EXPECT_DOUBLE_EQ(outcome.speedup, 2.0);
  EXPECT_EQ(provider.runs.load(), 1);

  // Resubmit: answered cached, still exactly one execution.
  const auto again = client.call(submit);
  ASSERT_TRUE(again.ok);
  EXPECT_EQ(again.body.at("jobs").as_array().at(0).at("state").as_string(),
            "cached");
  EXPECT_EQ(provider.runs.load(), 1);

  Request status;
  status.op = Op::Status;
  const auto counters = client.call(status);
  ASSERT_TRUE(counters.ok);
  EXPECT_DOUBLE_EQ(counters.body.at("done").as_number(), 1.0);

  // Unknown fingerprint: structured error, connection stays usable.
  Request unknown;
  unknown.op = Op::Result;
  unknown.fingerprint = "ffffffffffffffff";
  const auto missing = client.call(unknown);
  EXPECT_FALSE(missing.ok);
  EXPECT_NE(missing.error.find("unknown fingerprint"), std::string::npos);
  EXPECT_TRUE(client.call(status).ok);

  daemon.request_shutdown();
  EXPECT_TRUE(daemon.wait_for(10000));
}

TEST_F(DaemonTest, CampaignSubmitExpandsServerSide) {
  CountingProvider provider;
  Daemon daemon(options_for(&provider), &provider);
  daemon.start();
  TestClient client(daemon.endpoint());

  Request submit;
  submit.op = Op::Submit;
  submit.campaign_text =
      "workload mg\nstrategy exhaustive\nstrategy estimator\n";
  const auto reply = client.call(submit);
  ASSERT_TRUE(reply.ok) << reply.error;
  EXPECT_EQ(reply.body.at("jobs").as_array().size(), 2u);
  EXPECT_FALSE(reply.body.at("campaign").as_string().empty());

  Request drain;
  drain.op = Op::Drain;
  EXPECT_TRUE(client.call(drain).ok);
  EXPECT_EQ(provider.runs.load(), 2);

  daemon.request_shutdown();
  EXPECT_TRUE(daemon.wait_for(10000));
}

TEST_F(DaemonTest, MalformedRequestsGetStructuredErrorsNotCrashes) {
  CountingProvider provider;
  Daemon daemon(options_for(&provider), &provider);
  daemon.start();
  TestClient client(daemon.endpoint());

  for (const std::string line :
       {"not json\n", "{}\n", "{\"op\":\"nope\"}\n", "[1,2]\n",
        "{\"op\":\"result\"}\n"}) {
    const auto reply = client.call_raw(line);
    EXPECT_FALSE(reply.ok) << line;
    EXPECT_FALSE(reply.error.empty());
  }
  // An oversized line is rejected and the stream resyncs.
  const auto oversized = client.call_raw(
      "{\"pad\":\"" + std::string(kMaxLineBytes, 'x') + "\"}\n");
  EXPECT_FALSE(oversized.ok);
  EXPECT_NE(oversized.error.find("oversized"), std::string::npos);

  // The daemon survived it all; real work still lands.
  Request submit;
  submit.op = Op::Submit;
  submit.scenario = scenario_with_reps(1);
  ASSERT_TRUE(client.call(submit).ok);
  Request result;
  result.op = Op::Result;
  result.fingerprint = scenario_with_reps(1).fingerprint();
  result.wait = true;
  EXPECT_TRUE(client.call(result).ok);

  daemon.request_shutdown();
  EXPECT_TRUE(daemon.wait_for(10000));
}

TEST_F(DaemonTest, WatchStreamsCompletionsAndSurvivesDisconnect) {
  GatedProvider provider;
  Daemon daemon(options_for(&provider), &provider);
  daemon.start();

  // Two watchers: one will disconnect mid-stream.
  TestClient watcher(daemon.endpoint());
  auto dropper =
      std::make_unique<TestClient>(daemon.endpoint());
  Request watch;
  watch.op = Op::Watch;
  ASSERT_TRUE(watcher.call(watch).ok);
  ASSERT_TRUE(dropper->call(watch).ok);

  TestClient submitter(daemon.endpoint());
  const auto first = scenario_with_reps(1);
  const auto second = scenario_with_reps(2);
  Request submit;
  submit.op = Op::Submit;
  submit.scenario = first;
  ASSERT_TRUE(submitter.call(submit).ok);
  submit.scenario = second;
  ASSERT_TRUE(submitter.call(submit).ok);

  // Drop one watcher while jobs are still gated, then let them finish:
  // the daemon must deliver both events to the surviving watcher.
  dropper.reset();
  provider.release();

  std::vector<std::string> seen;
  for (int i = 0; i < 2; ++i) {
    const auto event = watcher.read();
    ASSERT_TRUE(event.is_event);
    EXPECT_EQ(event.event, "job");
    EXPECT_EQ(event.body.at("state").as_string(), "done");
    EXPECT_TRUE(event.body.as_object().contains("speedup"));
    seen.push_back(event.body.at("fingerprint").as_string());
  }
  EXPECT_NE(std::find(seen.begin(), seen.end(), first.fingerprint()),
            seen.end());
  EXPECT_NE(std::find(seen.begin(), seen.end(), second.fingerprint()),
            seen.end());

  // Shutdown notifies the surviving watcher before closing.
  daemon.request_shutdown();
  EXPECT_TRUE(daemon.wait_for(10000));
  const auto bye = watcher.read();
  EXPECT_TRUE(bye.is_event);
  EXPECT_EQ(bye.event, "shutdown");
}

TEST_F(DaemonTest, DrainFinishesEverythingShutdownOpStopsTheDaemon) {
  CountingProvider provider;
  Daemon daemon(options_for(&provider), &provider);
  daemon.start();
  TestClient client(daemon.endpoint());

  Request submit;
  submit.op = Op::Submit;
  for (int reps = 1; reps <= 4; ++reps) {
    submit.scenario = scenario_with_reps(reps);
    ASSERT_TRUE(client.call(submit).ok);
  }
  Request drain;
  drain.op = Op::Drain;
  const auto drained = client.call(drain);
  ASSERT_TRUE(drained.ok);
  EXPECT_TRUE(drained.body.at("drained").as_bool());
  EXPECT_EQ(provider.runs.load(), 4);

  Request shutdown;
  shutdown.op = Op::Shutdown;
  EXPECT_TRUE(client.call(shutdown).ok);
  EXPECT_TRUE(daemon.wait_for(10000));
}

}  // namespace
}  // namespace hmpt::service
