// Tests for hmpt::workloads — STREAM, pointer chase, random sum, FFT,
// mini k-Wave, mini NPB kernels and the paper-scale app models.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "common/error.h"
#include "common/rng.h"
#include "common/units.h"
#include "simmem/simulator.h"
#include "workloads/app_models.h"
#include "workloads/fft.h"
#include "workloads/kwave.h"
#include "workloads/npb_kernels.h"
#include "workloads/pointer_chase.h"
#include "workloads/random_access.h"
#include "workloads/stream.h"
#include "workloads/trace_io.h"

namespace hmpt::workloads {
namespace {

using topo::PoolKind;

class WorkloadFixture : public ::testing::Test {
 protected:
  topo::Machine machine_ = topo::xeon_max_9468_single_flat_snc4();
  pools::PoolAllocator pool_{machine_};
  shim::ShimAllocator shim_{pool_};
};

// ------------------------------------------------------------------ STREAM
TEST(StreamTest, PhaseShapesMatchKernelDefinitions) {
  const auto copy = make_stream_phase(StreamKernel::Copy, 16.0 * GB);
  ASSERT_EQ(copy.streams.size(), 2u);
  EXPECT_DOUBLE_EQ(copy.streams[0].bytes_read, 16.0 * GB);
  EXPECT_DOUBLE_EQ(copy.streams[1].bytes_written, 16.0 * GB);
  EXPECT_DOUBLE_EQ(copy.flops, 0.0);

  const auto triad = make_stream_phase(StreamKernel::Triad, 8.0 * GB);
  ASSERT_EQ(triad.streams.size(), 3u);
  EXPECT_DOUBLE_EQ(triad.flops, 2.0 * 8.0 * GB / sizeof(double));
  EXPECT_EQ(stream_arity(StreamKernel::Add), 3);
  EXPECT_EQ(stream_arity(StreamKernel::Scale), 2);
}

TEST(StreamTest, WorkloadTraceCoversAllKernelsAndIterations) {
  StreamWorkload workload(1.0 * GB, 5);
  EXPECT_EQ(workload.num_groups(), 3);
  const auto trace = workload.trace();
  EXPECT_EQ(trace.phases.size(), 20u);
  EXPECT_NEAR(workload.footprint_fraction(0), 1.0 / 3.0, 1e-12);
}

TEST_F(WorkloadFixture, MiniStreamValidates) {
  const auto result = run_mini_stream(shim_, 4096, 3);
  EXPECT_LT(result.max_residual, 1e-9);
  EXPECT_EQ(result.trace.phases.size(), 12u);
  EXPECT_EQ(shim_.registry().live_count(), 0u);  // arrays freed on scope
}

TEST_F(WorkloadFixture, MiniStreamFeedsSampler) {
  sample::IbsSampler sampler({256, sample::SamplingMode::Poisson, 1});
  const auto result = run_mini_stream(shim_, 8192, 2, &sampler);
  EXPECT_LT(result.max_residual, 1e-9);
  const auto report = sampler.report();
  EXPECT_GT(report.samples_kept, 100u);
  EXPECT_EQ(report.samples_unattributed, 0u);
  EXPECT_EQ(report.per_tag.size(), 3u);  // a, b, c
}

// ------------------------------------------------------------ pointer chase
TEST_F(WorkloadFixture, MiniChaseVisitsFullCycle) {
  const auto result = run_mini_chase(shim_, 1024, 5000);
  EXPECT_TRUE(result.full_cycle);
  EXPECT_LT(result.final_index, 1024u);
  ASSERT_EQ(result.trace.phases.size(), 1u);
  EXPECT_EQ(result.trace.phases[0].streams[0].pattern,
            sim::AccessPattern::PointerChase);
}

TEST(ChaseWorkloadTest, TraceReflectsWindowAndAccesses) {
  PointerChaseWorkload workload(64.0 * MB, 1e6);
  const auto trace = workload.trace();
  EXPECT_DOUBLE_EQ(trace.phases[0].streams[0].working_set_bytes, 64.0 * MB);
  EXPECT_DOUBLE_EQ(trace.total_bytes(), 1e6 * kCacheLine);
}

// -------------------------------------------------------------- random sum
TEST_F(WorkloadFixture, MiniRandomSumMatchesReference) {
  const auto result = run_mini_random_sum(shim_, 4096, 20'000);
  EXPECT_DOUBLE_EQ(result.sum, result.reference);
}

TEST(RandomSumWorkloadTest, PatternsSplitDataAndIndex) {
  RandomSumWorkload workload(1.0 * GB, 1e6);
  const auto trace = workload.trace();
  ASSERT_EQ(trace.phases[0].streams.size(), 2u);
  EXPECT_EQ(trace.phases[0].streams[0].pattern, sim::AccessPattern::Random);
  EXPECT_EQ(trace.phases[0].streams[1].pattern,
            sim::AccessPattern::Sequential);
}

// --------------------------------------------------------------------- FFT
TEST(FftTest, RoundTripRecoversSignal) {
  std::vector<Complex> data(256);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = Complex(std::sin(0.1 * static_cast<double>(i)),
                      std::cos(0.05 * static_cast<double>(i)));
  const auto original = data;
  fft_inplace(data, false);
  fft_inplace(data, true);
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_NEAR(std::abs(data[i] - original[i]), 0.0, 1e-10) << i;
}

TEST(FftTest, DeltaTransformsToConstant) {
  std::vector<Complex> data(64, Complex(0, 0));
  data[0] = Complex(1, 0);
  fft_inplace(data, false);
  for (const auto& v : data) EXPECT_NEAR(std::abs(v - Complex(1, 0)), 0.0,
                                         1e-12);
}

TEST(FftTest, SingleModeHasSingleBin) {
  const std::size_t n = 128;
  std::vector<Complex> data(n);
  const int k = 5;
  for (std::size_t i = 0; i < n; ++i) {
    const double phase = 2.0 * M_PI * k * static_cast<double>(i) /
                         static_cast<double>(n);
    data[i] = Complex(std::cos(phase), std::sin(phase));
  }
  fft_inplace(data, false);
  for (std::size_t i = 0; i < n; ++i) {
    const double expected = i == static_cast<std::size_t>(k)
                                ? static_cast<double>(n)
                                : 0.0;
    EXPECT_NEAR(std::abs(data[i]), expected, 1e-9) << i;
  }
}

TEST(FftTest, ParsevalHolds) {
  std::vector<Complex> data(512);
  Rng rng(3);
  double time_energy = 0.0;
  for (auto& v : data) {
    v = Complex(rng.next_double() - 0.5, rng.next_double() - 0.5);
    time_energy += std::norm(v);
  }
  fft_inplace(data, false);
  double freq_energy = 0.0;
  for (const auto& v : data) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(data.size()), time_energy,
              1e-9);
}

TEST(FftTest, ThreeDimensionalRoundTrip) {
  const std::size_t n = 8;
  std::vector<Complex> vol(n * n * n);
  Rng rng(4);
  for (auto& v : vol) v = Complex(rng.next_double(), rng.next_double());
  const auto original = vol;
  fft3d_inplace(vol.data(), n, n, n, false);
  fft3d_inplace(vol.data(), n, n, n, true);
  for (std::size_t i = 0; i < vol.size(); ++i)
    EXPECT_NEAR(std::abs(vol[i] - original[i]), 0.0, 1e-10);
}

TEST(FftTest, NonPowerOfTwoRejected) {
  std::vector<Complex> data(100);
  EXPECT_THROW(fft_inplace(data, false), hmpt::Error);
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(4096));
}

TEST(FftTest, FlopCountsScale) {
  EXPECT_DOUBLE_EQ(fft_flops(1), 0.0);
  EXPECT_DOUBLE_EQ(fft_flops(8), 5.0 * 8.0 * 3.0);
  EXPECT_GT(fft3d_flops(16, 16, 16), 3.0 * fft_flops(16) * 256.0 * 0.99);
}

// ------------------------------------------------------------------ k-Wave
TEST_F(WorkloadFixture, MiniKWaveStaysFiniteAndConservesMass) {
  KWaveConfig config;
  config.n = 8;
  config.steps = 3;
  const auto result = run_mini_kwave(shim_, config);
  EXPECT_TRUE(result.finite);
  EXPECT_GT(result.max_pressure, 0.0);
  // drho/dt = -rho0 div(u): the k=0 mode is untouched, so the mean density
  // (relative to the initial mean) must be conserved to FP precision.
  EXPECT_LT(result.mass_drift, 1e-12);
}

TEST(KWaveTraceTest, GroupFootprintsMatchPaperScale) {
  const auto groups = kwave_groups(512);
  double total = 0.0;
  for (const auto& g : groups) total += g.bytes;
  EXPECT_NEAR(total / GB, 9.79, 0.15);  // Table I: 9.79 GB
  // fft_tmp (two complex fields) dominates the footprint.
  EXPECT_GT(groups[3].bytes, groups[2].bytes);
}

TEST(KWaveTraceTest, FftTemporariesDominateTraffic) {
  const auto trace = kwave_trace(64, 2);
  double tmp_bytes = trace.total_bytes_of_group(3);
  EXPECT_GT(tmp_bytes / trace.total_bytes(), 0.5);
}

// --------------------------------------------------------------- NPB minis
TEST_F(WorkloadFixture, MiniMgReducesResidual) {
  MiniMgConfig config;
  config.n = 16;
  config.v_cycles = 3;
  const auto result = run_mini_mg(shim_, config);
  EXPECT_TRUE(result.converging);
  EXPECT_LT(result.final_residual, 0.5 * result.initial_residual);
}

TEST_F(WorkloadFixture, MiniMgTraceHasThreeGroups) {
  MiniMgConfig config;
  config.n = 8;
  config.v_cycles = 1;
  const auto result = run_mini_mg(shim_, config);
  EXPECT_EQ(result.trace.num_groups(), 3);
  // u and r dominate the traffic; v is touched only at the finest level.
  const double u_frac = result.trace.access_fraction(0);
  const double r_frac = result.trace.access_fraction(1);
  const double v_frac = result.trace.access_fraction(2);
  EXPECT_GT(u_frac + r_frac, 0.85);
  EXPECT_LT(v_frac, 0.15);
}

TEST_F(WorkloadFixture, MiniIsSortsCorrectly) {
  MiniIsConfig config;
  config.num_keys = 1u << 12;
  config.max_key = 1u << 8;
  const auto result = run_mini_is(shim_, config);
  EXPECT_TRUE(result.sorted);
  EXPECT_TRUE(result.permutation_ok);
  EXPECT_EQ(result.trace.num_groups(), 4);
}

TEST_F(WorkloadFixture, MiniIsSamplerSeesHistogramTraffic) {
  sample::IbsSampler sampler({64, sample::SamplingMode::Poisson, 2});
  MiniIsConfig config;
  config.num_keys = 1u << 12;
  config.max_key = 1u << 8;
  const auto result = run_mini_is(shim_, config, &sampler);
  EXPECT_TRUE(result.sorted);
  EXPECT_GE(sampler.report().per_tag.size(), 3u);
}

// -------------------------------------------------------------- app models
class AppModelTest : public ::testing::Test {
 protected:
  sim::MachineSimulator sim_ = sim::MachineSimulator::paper_platform();
};

TEST_F(AppModelTest, SuiteMatchesTableOne) {
  const auto suite = paper_benchmark_suite(sim_);
  ASSERT_EQ(suite.size(), 7u);
  // Table I memory usage within 2 %.
  const double expected_gb[] = {26.46, 10.68, 8.65, 11.19, 7.25, 20.0,
                                9.79};
  const int expected_allocs[] = {3, 9, 7, 10, 56, 4, 34};
  for (std::size_t i = 0; i < suite.size(); ++i) {
    EXPECT_NEAR(suite[i].memory_bytes / GB, expected_gb[i],
                expected_gb[i] * 0.02)
        << suite[i].name;
    EXPECT_EQ(suite[i].filtered_allocations, expected_allocs[i]);
    EXPECT_GE(suite[i].workload->num_groups(), 3);
  }
}

TEST_F(AppModelTest, GroupFootprintsSumToAppFootprint) {
  for (const auto& app : paper_benchmark_suite(sim_)) {
    double total = 0.0;
    for (const auto& g : app.workload->groups()) total += g.bytes;
    EXPECT_NEAR(total, app.memory_bytes, app.memory_bytes * 1e-6)
        << app.name;
  }
}

TEST_F(AppModelTest, TracesReferenceOnlyDeclaredGroups) {
  for (const auto& app : paper_benchmark_suite(sim_)) {
    const auto trace = app.workload->trace();
    EXPECT_LE(trace.num_groups(), app.workload->num_groups()) << app.name;
    EXPECT_GT(trace.total_bytes(), 0.0);
  }
}

TEST_F(AppModelTest, ArithmeticIntensityOrdersLikeFig8) {
  // BT (compute-heavy) must have far higher AI than MG (bandwidth-bound).
  const double ai_mg =
      arithmetic_intensity(*make_mg_model(sim_).workload);
  const double ai_bt =
      arithmetic_intensity(*make_bt_model(sim_).workload);
  EXPECT_GT(ai_bt, 3.0 * ai_mg);
}

TEST_F(AppModelTest, SyntheticBuilderValidatesInput) {
  const auto ctx = sim_.full_machine();
  EXPECT_THROW(make_synthetic_app("x", 1.0 * GB, {{"g", 0.5}}, {}, 10.0,
                                  sim_, ctx),
               hmpt::Error);  // fractions must sum to 1
  EXPECT_THROW(make_synthetic_app("x", 0.0, {{"g", 1.0}}, {}, 10.0, sim_,
                                  ctx),
               hmpt::Error);
}

TEST_F(AppModelTest, SyntheticAppRoundTripsTimeFractions) {
  // A single group with seq_time 0.6 plus compute 0.4 must run in exactly
  // `runtime` seconds when everything stays in DDR.
  const auto ctx = sim_.full_machine();
  const double runtime = 25.0;
  const auto wl = make_synthetic_app(
      "probe", 1.0 * GB, {{"g", 1.0}},
      {{"sweep", {{0, 0.6, 0.0}}, 0.0}, {"comp", {}, 0.4}}, runtime, sim_,
      ctx);
  const double t = sim_.time_trace(
      wl->trace(), sim::Placement::uniform(1, PoolKind::DDR), ctx);
  EXPECT_NEAR(t, runtime, runtime * 1e-6);
}

// ---------------------------------------------------------------- trace_io

TEST(TraceIoTest, ProfileRoundTripsLosslessly) {
  // Serialise -> parse -> serialise must be a fixed point: the profile
  // format stores doubles at 17 significant digits, so a recorded
  // workload replays with bit-identical traffic.
  auto sim = sim::MachineSimulator::paper_platform();
  for (const auto& app : paper_benchmark_suite(sim)) {
    const std::string text = serialize_workload(*app.workload);
    const RecordedWorkload parsed = parse_workload(text);
    EXPECT_EQ(serialize_workload(parsed), text) << app.name;

    // Groups survive exactly (labels sanitised, bytes bit-identical).
    const auto original = app.workload->groups();
    const auto round = parsed.groups();
    ASSERT_EQ(round.size(), original.size()) << app.name;
    for (std::size_t g = 0; g < original.size(); ++g)
      EXPECT_EQ(round[g].bytes, original[g].bytes) << app.name;

    // And so does the trace, stream for stream.
    const auto a = app.workload->trace();
    const auto b = parsed.trace();
    ASSERT_EQ(b.phases.size(), a.phases.size()) << app.name;
    for (std::size_t p = 0; p < a.phases.size(); ++p) {
      EXPECT_EQ(b.phases[p].flops, a.phases[p].flops);
      EXPECT_EQ(b.phases[p].vectorized, a.phases[p].vectorized);
      ASSERT_EQ(b.phases[p].streams.size(), a.phases[p].streams.size());
      for (std::size_t s = 0; s < a.phases[p].streams.size(); ++s) {
        EXPECT_EQ(b.phases[p].streams[s].group, a.phases[p].streams[s].group);
        EXPECT_EQ(b.phases[p].streams[s].bytes_read,
                  a.phases[p].streams[s].bytes_read);
        EXPECT_EQ(b.phases[p].streams[s].bytes_written,
                  a.phases[p].streams[s].bytes_written);
      }
    }
  }
}

TEST(TraceIoTest, FileRoundTripMatchesStringRoundTrip) {
  auto sim = sim::MachineSimulator::paper_platform();
  const auto app = make_kwave_model(sim);
  const std::string path = "/tmp/hmpt_trace_io_test.profile";
  save_workload(path, *app.workload);
  const RecordedWorkload loaded = load_workload(path);
  EXPECT_EQ(serialize_workload(loaded), serialize_workload(*app.workload));
  std::remove(path.c_str());
  EXPECT_THROW(load_workload(path), hmpt::Error);  // gone again
}

}  // namespace
}  // namespace hmpt::workloads
