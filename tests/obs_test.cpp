// Tests for the observability layer (src/obs): the Chrome trace-event
// recorder (concurrent span emission, JSON validity, per-lane timestamp
// monotonicity, B/E balance), the metrics registry (counters, gauges,
// histograms, empty-distribution snapshots), the report-side timeline
// loader, and the load-bearing inertness guarantee — a traced campaign
// produces byte-identical runs.csv/summary.json/outcome-store files to
// an untraced one.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/aggregate.h"
#include "campaign/campaign.h"
#include "common/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "report/report.h"

namespace hmpt::obs {
namespace {

namespace fs = std::filesystem;

/// A fresh directory per test, removed on scope exit (the campaign
/// tests' idiom).
class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string slurp(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

/// Every regular file under `root`, keyed by its path relative to
/// `root`, mapped to its exact bytes.
std::map<std::string, std::string> file_bytes(const fs::path& root) {
  std::map<std::string, std::string> out;
  for (const auto& entry : fs::recursive_directory_iterator(root))
    if (entry.is_regular_file())
      out[fs::relative(entry.path(), root).string()] = slurp(entry.path());
  return out;
}

// ----------------------------------------------------------------- trace

TEST(TraceRecorderTest, DisarmedRecorderRecordsNothing) {
  auto& recorder = TraceRecorder::instance();
  ASSERT_FALSE(recorder.enabled());
  {
    TraceSpan span("test", "ignored");
    EXPECT_FALSE(span.armed());
    span.arg("key", "value");  // must be a no-op, not a crash
    trace_instant("test", "also-ignored");
    trace_counter("test", "depth", 3.0);
  }
  // Only the process_name metadata event may appear — nothing recorded.
  const auto doc = Json::parse(recorder.stop_and_render());
  for (const auto& event : doc.at("traceEvents").as_array())
    EXPECT_EQ(event.at("ph").as_string(), "M");
}

TEST(TraceRecorderTest, ConcurrentSpansRenderValidBalancedJson) {
  auto& recorder = TraceRecorder::instance();
  recorder.start();

  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span("test", "work");
        span.arg_number("thread", static_cast<std::uint64_t>(t));
        span.arg_number("iter", static_cast<std::uint64_t>(i));
        trace_instant("test", "tick");
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // The rendered document parses with the project's own JSON parser and
  // carries every emitted event.
  const auto doc = Json::parse(recorder.stop_and_render());
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_FALSE(events.empty());

  // Per (pid, tid) lane: timestamps never go backwards and B/E nest.
  std::map<std::pair<double, double>, double> last_ts;
  std::map<std::pair<double, double>, int> depth;
  int begins = 0, ends = 0;
  for (const auto& event : events) {
    const std::string ph = event.at("ph").as_string();
    if (ph == "M") continue;  // metadata carries no timestamp ordering
    const std::pair<double, double> lane{event.at("pid").as_number(),
                                         event.at("tid").as_number()};
    const double ts = event.at("ts").as_number();
    const auto it = last_ts.find(lane);
    if (it != last_ts.end()) EXPECT_GE(ts, it->second);
    last_ts[lane] = ts;
    if (ph == "B") {
      ++begins;
      ++depth[lane];
    } else if (ph == "E") {
      ++ends;
      EXPECT_GT(depth[lane]--, 0) << "E without a matching B";
    }
  }
  EXPECT_EQ(begins, kThreads * kSpansPerThread);
  EXPECT_EQ(begins, ends);
  for (const auto& [lane, open] : depth) EXPECT_EQ(open, 0);
}

TEST(TraceRecorderTest, UnclosedSpansAreSynthesisedClosed) {
  auto& recorder = TraceRecorder::instance();
  recorder.start();
  // Deliberately leak a span past the stop: render must still balance.
  auto* leaked = new TraceSpan("test", "leaked");
  const auto doc = Json::parse(recorder.stop_and_render());
  delete leaked;

  int begins = 0, ends = 0;
  for (const auto& event : doc.at("traceEvents").as_array()) {
    const std::string ph = event.at("ph").as_string();
    begins += ph == "B";
    ends += ph == "E";
  }
  EXPECT_EQ(begins, 1);
  EXPECT_EQ(ends, 1);
}

TEST(TraceRecorderTest, SpanArgsRideOnTheClosingEvent) {
  auto& recorder = TraceRecorder::instance();
  recorder.start();
  {
    TraceSpan span("campaign", "scenario");
    span.arg("fingerprint", "abc123");
    span.arg("status", "executed");
  }
  const auto doc = Json::parse(recorder.stop_and_render());
  bool saw_close = false;
  for (const auto& event : doc.at("traceEvents").as_array()) {
    if (event.at("ph").as_string() != "E") continue;
    saw_close = true;
    EXPECT_EQ(event.at("args").string_or("fingerprint", ""), "abc123");
    EXPECT_EQ(event.at("args").string_or("status", ""), "executed");
  }
  EXPECT_TRUE(saw_close);
}

// ----------------------------------------------------------- timeline

TEST(TraceTimelineTest, LoadsScenarioSpansFromATraceFile) {
  TempDir dir("hmpt_obs_timeline");
  fs::create_directories(dir.path());
  const std::string path = (fs::path(dir.path()) / "trace.json").string();

  auto& recorder = TraceRecorder::instance();
  recorder.start();
  {
    TraceSpan span("campaign", "scenario");
    span.arg("label", "mg/xeon-max/exhaustive");
    span.arg("fingerprint", "deadbeef");
    span.arg("status", "executed");
  }
  {
    TraceSpan other("strategy", "sweep");  // foreign cat: ignored
  }
  recorder.stop_and_write(path);

  const auto timeline = report::load_trace_timeline(path);
  ASSERT_EQ(timeline.spans.size(), 1u);
  const auto& span = timeline.spans[0];
  EXPECT_EQ(span.label, "mg/xeon-max/exhaustive");
  EXPECT_EQ(span.fingerprint, "deadbeef");
  EXPECT_EQ(span.status, "executed");
  EXPECT_GE(span.end_ms, span.start_ms);
  EXPECT_FALSE(span.lane.empty());
}

TEST(TraceTimelineTest, RejectsMissingAndMalformedFiles) {
  EXPECT_THROW(report::load_trace_timeline("/nonexistent/trace.json"),
               Error);
  TempDir dir("hmpt_obs_timeline_bad");
  fs::create_directories(dir.path());
  const std::string path = (fs::path(dir.path()) / "bad.json").string();
  std::ofstream(path) << "this is not json";
  EXPECT_THROW(report::load_trace_timeline(path), Error);
}

// ------------------------------------------------------------- metrics

TEST(MetricsTest, CountersGaugesAndHistogramsRoundTrip) {
  auto& registry = MetricsRegistry::instance();
  registry.reset();

  auto& counter = registry.counter("test.events");
  counter.add();
  counter.add(4);
  EXPECT_EQ(counter.value(), 5u);
  // Get-or-create returns the same instance.
  EXPECT_EQ(&registry.counter("test.events"), &counter);

  registry.gauge("test.depth").set(7.0);
  auto& histogram = registry.histogram("test.latency");
  for (int i = 1; i <= 100; ++i) histogram.observe(i);

  const auto snap = Json::parse(registry.snapshot().dump());
  EXPECT_EQ(snap.at("counters").number_or("test.events", 0), 5.0);
  EXPECT_EQ(snap.at("gauges").number_or("test.depth", 0), 7.0);
  const auto& latency = snap.at("histograms").at("test.latency");
  EXPECT_EQ(latency.number_or("count", 0), 100.0);
  EXPECT_GT(latency.number_or("p95", 0), latency.number_or("p50", 0));
  registry.reset();
}

TEST(MetricsTest, EmptyHistogramSnapshotsReportCountOnly) {
  auto& registry = MetricsRegistry::instance();
  registry.reset();
  registry.histogram("test.empty");  // registered, never observed

  const auto snap = Json::parse(registry.snapshot().dump());
  const auto& empty = snap.at("histograms").at("test.empty");
  EXPECT_EQ(empty.number_or("count", -1), 0.0);
  // No misleading zero quantiles on an empty distribution.
  EXPECT_FALSE(empty.as_object().contains("p50"));
  EXPECT_FALSE(empty.as_object().contains("p95"));
  EXPECT_FALSE(empty.as_object().contains("p99"));
  EXPECT_FALSE(empty.as_object().contains("mean"));
  registry.reset();
}

TEST(MetricsTest, SnapshotToJsonHonoursSuffixAndEmptiness) {
  ConcurrentQuantileTracker tracker;
  const auto empty = snapshot_to_json(tracker.snapshot(), "_s");
  EXPECT_TRUE(empty.contains("count"));
  EXPECT_FALSE(empty.contains("mean_s"));
  EXPECT_FALSE(empty.contains("p50_s"));

  for (int i = 1; i <= 50; ++i) tracker.add(i * 0.01);
  const auto filled = snapshot_to_json(tracker.snapshot(), "_s");
  EXPECT_EQ(filled.find("count")->as_number(), 50.0);
  EXPECT_TRUE(filled.contains("mean_s"));
  EXPECT_TRUE(filled.contains("p50_s"));
  EXPECT_TRUE(filled.contains("p95_s"));
  EXPECT_TRUE(filled.contains("p99_s"));
}

// ------------------------------------------------------------ inertness

TEST(TraceInertnessTest, TracedCampaignArtefactsAreByteIdentical) {
  // The load-bearing guarantee: arming the recorder must not perturb a
  // single byte of the content-addressed artefact set.
  campaign::ScenarioMatrix matrix;
  matrix.workloads = {
      campaign::parse_workload_spec("stream:array_gb=1,iterations=2"),
      campaign::parse_workload_spec("mg")};
  matrix.platforms = {"xeon-max"};
  matrix.strategies = {"estimator", "online"};
  matrix.repetitions = 1;
  const auto scenario_list = matrix.expand();

  const auto run = [&](const std::string& dir_name, bool traced) {
    TempDir dir(dir_name);
    campaign::CampaignOptions options;
    options.output_dir = dir.path();
    options.scenario_jobs = 2;
    if (traced) TraceRecorder::instance().start();
    const auto result = campaign::CampaignRunner(options).run(scenario_list);
    if (traced) {
      const auto doc =
          Json::parse(TraceRecorder::instance().stop_and_render());
      EXPECT_FALSE(doc.at("traceEvents").as_array().empty());
    }
    EXPECT_TRUE(result.ok());
    campaign::write_artifacts(result, options.output_dir);
    auto bytes = file_bytes(dir.path());
    // status.json carries wall-clock times — volatile by design, so it
    // sits outside the byte-identity contract.
    bytes.erase("status.json");
    return bytes;
  };

  const auto untraced = run("hmpt_obs_inert_off", false);
  const auto traced = run("hmpt_obs_inert_on", true);

  ASSERT_FALSE(untraced.empty());
  ASSERT_EQ(untraced.size(), traced.size());
  for (const auto& [name, bytes] : untraced) {
    const auto it = traced.find(name);
    ASSERT_NE(it, traced.end()) << name;
    EXPECT_EQ(bytes, it->second) << name << " differs under tracing";
  }
}

}  // namespace
}  // namespace hmpt::obs
