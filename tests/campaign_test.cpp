// Tests for the campaign engine: workload registry, scenario matrix +
// fingerprints, outcome JSON round trips, the on-disk outcome store and
// the resumable CampaignRunner.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>

#include "campaign/aggregate.h"
#include "campaign/campaign.h"
#include "campaign/platforms.h"
#include "core/outcome_io.h"
#include "core/session.h"
#include "workloads/app_models.h"
#include "workloads/trace_io.h"

namespace hmpt::campaign {
namespace {

namespace fs = std::filesystem;

/// Outcomes compare equal iff their (lossless) serialisations agree.
std::string json_of(const tuner::TuningOutcome& outcome) {
  return tuner::outcome_to_json(outcome).dump(-1);
}

/// A fresh store directory per test, removed on scope exit.
class StoreDir {
 public:
  explicit StoreDir(const std::string& name)
      : path_((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path_);
  }
  ~StoreDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ---------------------------------------------------------- workload specs

TEST(WorkloadSpecTest, ParsesAndCanonicalises) {
  const auto bare = parse_workload_spec("mg");
  EXPECT_EQ(bare.name, "mg");
  EXPECT_TRUE(bare.params.empty());
  EXPECT_EQ(bare.to_string(), "mg");

  // Parameter order does not matter: to_string() sorts keys, so both
  // spellings fingerprint (and dedup) identically.
  const auto a = parse_workload_spec("stream:iterations=4,array_gb=2");
  const auto b = parse_workload_spec("stream:array_gb=2,iterations=4");
  EXPECT_EQ(a.to_string(), "stream:array_gb=2,iterations=4");
  EXPECT_EQ(a.to_string(), b.to_string());
}

TEST(WorkloadSpecTest, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_workload_spec(""), Error);
  EXPECT_THROW(parse_workload_spec(":a=1"), Error);
  EXPECT_THROW(parse_workload_spec("stream:array_gb"), Error);
  EXPECT_THROW(parse_workload_spec("stream:=2"), Error);
  EXPECT_THROW(parse_workload_spec("stream:a=1,a=2"), Error);
}

// -------------------------------------------------------------- registry

TEST(WorkloadRegistryTest, KnowsTheBuiltIns) {
  const auto names = WorkloadRegistry::instance().names();
  for (const char* expected :
       {"mg", "bt", "lu", "sp", "ua", "is", "kwave", "stream",
        "pointer-chase", "random-sum", "recorded"})
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
}

TEST(WorkloadRegistryTest, ConstructsParameterisedWorkloads) {
  auto sim = sim::MachineSimulator::paper_platform();
  const auto stream = WorkloadRegistry::instance().create(
      "stream", sim, {{"array_gb", "2"}, {"iterations", "4"}});
  ASSERT_NE(stream.workload, nullptr);
  EXPECT_EQ(stream.workload->num_groups(), 3);
  EXPECT_DOUBLE_EQ(stream.workload->total_bytes(), 3 * 2.0 * GB);

  // Paper app models carry their calibrated execution context.
  const auto mg = WorkloadRegistry::instance().create("mg", sim);
  EXPECT_TRUE(mg.context.has_value());
  EXPECT_EQ(mg.workload->name(), "NPB: Multi-Grid");
}

TEST(WorkloadRegistryTest, RejectsUnknownNamesAndParameters) {
  auto sim = sim::MachineSimulator::paper_platform();
  auto& registry = WorkloadRegistry::instance();
  EXPECT_THROW(registry.create("frobnicate", sim), Error);
  EXPECT_THROW(registry.create("stream", sim, {{"arraygb", "2"}}), Error);
  EXPECT_THROW(registry.create("stream", sim, {{"array_gb", "abc"}}), Error);
  EXPECT_THROW(registry.create("mg", sim, {{"scale", "-1"}}), Error);
  EXPECT_THROW(registry.create("recorded", sim), Error);  // needs path
}

TEST(WorkloadRegistryTest, RecordedWorkloadReplaysAProfileByName) {
  auto sim = sim::MachineSimulator::paper_platform();
  const auto app = workloads::make_mg_model(sim);
  const std::string path =
      (fs::temp_directory_path() / "hmpt_registry_replay.profile").string();
  workloads::save_workload(path, *app.workload);

  const auto replayed = WorkloadRegistry::instance().create(
      "recorded", sim, {{"path", path}});
  ASSERT_NE(replayed.workload, nullptr);
  // The replay is lossless: re-serialising the replayed workload
  // reproduces the profile text byte-for-byte.
  EXPECT_EQ(workloads::serialize_workload(*replayed.workload),
            workloads::serialize_workload(*app.workload));

  // And tuning the replayed workload gives the same outcome as tuning
  // the profile parsed in-process (same groups, same trace, same noise
  // streams; profile names are sanitised, so compare recorded to
  // recorded, not to the pre-sanitisation model).
  const auto tune = [&](const workloads::Workload& w) {
    auto simulator = sim::MachineSimulator::paper_platform();
    return tuner::Session::on(simulator)
        .workload(w)
        .strategy("estimator")
        .run();
  };
  const auto parsed = workloads::parse_workload(
      workloads::serialize_workload(*app.workload));
  EXPECT_EQ(json_of(tune(*replayed.workload)), json_of(tune(parsed)));
  std::remove(path.c_str());
}

// ------------------------------------------------------------- platforms

TEST(PlatformTest, CanonicalisesAliases) {
  EXPECT_EQ(canonical_platform("spr"), "xeon-max");
  EXPECT_EQ(canonical_platform("xeon-max"), "xeon-max");
  EXPECT_EQ(canonical_platform("spr1"), "xeon-max-1s");
  EXPECT_TRUE(is_platform("spr-cxl"));
  EXPECT_FALSE(is_platform("frobnicate"));
  EXPECT_THROW(canonical_platform("frobnicate"), Error);
  EXPECT_EQ(make_platform("spr-cxl").machine().num_memory_tiers(), 3);
}

// ----------------------------------------------------------- fingerprints

TEST(ScenarioTest, FingerprintIsStableAndContentAddressed) {
  Scenario s;
  s.workload = parse_workload_spec("mg");
  s.platform = "xeon-max";
  s.strategy = "exhaustive";

  const std::string base = s.fingerprint();
  EXPECT_EQ(base.size(), 16u);
  EXPECT_EQ(base, s.fingerprint());  // deterministic

  // Every semantic field invalidates the fingerprint...
  for (const auto& mutate : std::vector<std::function<void(Scenario&)>>{
           [](Scenario& x) { x.workload = parse_workload_spec("mg:scale=2"); },
           [](Scenario& x) { x.platform = "spr-cxl"; },
           [](Scenario& x) { x.strategy = "online"; },
           [](Scenario& x) { x.tiers = 2; },
           [](Scenario& x) { x.budget_gb = 16.0; },
           [](Scenario& x) { x.tier_budgets_gb = {{1, 32.0}}; },
           [](Scenario& x) { x.repetitions = 5; },
           [](Scenario& x) { x.top_k = 7; }}) {
    Scenario changed = s;
    mutate(changed);
    EXPECT_NE(changed.fingerprint(), base) << changed.canonical();
  }

  // ...and tier-budget declaration order does not (canonical() sorts).
  Scenario two_budgets = s;
  two_budgets.tier_budgets_gb = {{2, 64.0}, {1, 32.0}};
  Scenario sorted = s;
  sorted.tier_budgets_gb = {{1, 32.0}, {2, 64.0}};
  EXPECT_EQ(two_budgets.fingerprint(), sorted.fingerprint());
}

TEST(ScenarioTest, RecordedProfileContentsAreFingerprinted) {
  // A recorded workload is the *contents* of its profile: re-recording
  // the file must invalidate the cached scenario even though the path
  // (and so the spec text) is unchanged.
  const std::string path =
      (fs::temp_directory_path() / "hmpt_fp_profile.profile").string();
  Scenario s;
  s.workload = parse_workload_spec("recorded:path=" + path);
  s.platform = "xeon-max";
  s.strategy = "estimator";

  auto sim = sim::MachineSimulator::paper_platform();
  workloads::save_workload(path, *workloads::make_mg_model(sim).workload);
  const std::string fp_mg = s.fingerprint();
  EXPECT_EQ(fp_mg, s.fingerprint());  // stable while the file is stable

  workloads::save_workload(path, *workloads::make_bt_model(sim).workload);
  EXPECT_NE(s.fingerprint(), fp_mg);  // contents changed -> cache miss

  std::remove(path.c_str());
  const std::string fp_missing = s.fingerprint();  // planning never throws
  EXPECT_NE(fp_missing, fp_mg);
  EXPECT_EQ(fp_missing, s.fingerprint());
}

TEST(ScenarioTest, JsonRoundTrips) {
  Scenario s;
  s.workload = parse_workload_spec("stream:array_gb=2");
  s.platform = "spr-cxl";
  s.strategy = "estimator";
  s.tiers = 3;
  s.budget_gb = 16.0;
  s.tier_budgets_gb = {{2, 64.0}};
  s.repetitions = 2;
  s.top_k = 5;
  const Scenario back = Scenario::from_json(s.to_json());
  EXPECT_EQ(back.canonical(), s.canonical());
  EXPECT_EQ(back.fingerprint(), s.fingerprint());
}

// ----------------------------------------------------------------- matrix

TEST(ScenarioMatrixTest, ExpandsTheCrossProductAndDedups) {
  ScenarioMatrix matrix;
  matrix.workloads = {parse_workload_spec("mg"),
                      parse_workload_spec("kwave")};
  // "spr" is an alias of "xeon-max": the duplicate platform must fold.
  matrix.platforms = {"xeon-max", "spr", "spr-cxl"};
  matrix.strategies = {"exhaustive", "online"};
  const auto scenarios = matrix.expand();
  EXPECT_EQ(scenarios.size(), 2u * 2u * 2u);
  for (const auto& s : scenarios)
    EXPECT_TRUE(s.platform == "xeon-max" || s.platform == "spr-cxl");
}

TEST(ScenarioMatrixTest, ValidatesEveryAxis) {
  ScenarioMatrix matrix;
  matrix.workloads = {parse_workload_spec("mg")};
  matrix.platforms = {"xeon-max"};
  matrix.strategies = {"exhaustive"};
  EXPECT_EQ(matrix.expand().size(), 1u);  // the valid baseline

  auto broken = matrix;
  broken.workloads = {parse_workload_spec("frobnicate")};
  EXPECT_THROW(broken.expand(), Error);
  broken = matrix;
  broken.platforms = {"frobnicate"};
  EXPECT_THROW(broken.expand(), Error);
  broken = matrix;
  broken.strategies = {"frobnicate"};
  EXPECT_THROW(broken.expand(), Error);
  broken = matrix;
  broken.tiers = {1};
  EXPECT_THROW(broken.expand(), Error);
  broken = matrix;
  broken.budgets_gb = {-1.0};
  EXPECT_THROW(broken.expand(), Error);
  broken = matrix;
  broken.repetitions = 0;
  EXPECT_THROW(broken.expand(), Error);
  broken = matrix;
  broken.workloads.clear();
  EXPECT_THROW(broken.expand(), Error);
}

TEST(ScenarioMatrixTest, ParsesTheCampaignFileFormat) {
  const auto matrix = ScenarioMatrix::parse(
      "# nightly sweep\n"
      "workload mg\n"
      "workload stream:array_gb=2,iterations=4   # small STREAM\n"
      "platform xeon-max\n"
      "platform spr-cxl\n"
      "strategy exhaustive\n"
      "strategy estimator\n"
      "\n"
      "tiers 0\n"
      "budget-gb 0\n"
      "budget-gb 16\n"
      "tier-budget-gb 2:64\n"
      "reps 2\n"
      "top-k 4\n");
  EXPECT_EQ(matrix.workloads.size(), 2u);
  EXPECT_EQ(matrix.platforms.size(), 2u);
  EXPECT_EQ(matrix.strategies.size(), 2u);
  EXPECT_EQ(matrix.budgets_gb.size(), 2u);
  ASSERT_EQ(matrix.tier_budgets_gb.size(), 1u);
  EXPECT_EQ(matrix.tier_budgets_gb[0].first, 2);
  EXPECT_EQ(matrix.repetitions, 2);
  EXPECT_EQ(matrix.top_k, 4);
  EXPECT_EQ(matrix.expand().size(), 2u * 2u * 2u * 2u);

  // '#' only comments at line start or after whitespace: a '#' inside a
  // value (e.g. a profile path) is data.
  const auto hashed = ScenarioMatrix::parse(
      "workload recorded:path=/data/run#3.profile  # re-recorded\n");
  ASSERT_EQ(hashed.workloads.size(), 1u);
  EXPECT_EQ(hashed.workloads[0].params.at("path"), "/data/run#3.profile");

  EXPECT_THROW(ScenarioMatrix::parse("frobnicate mg\n"), Error);
  EXPECT_THROW(ScenarioMatrix::parse("workload\n"), Error);
  EXPECT_THROW(ScenarioMatrix::parse("reps two\n"), Error);
  EXPECT_THROW(ScenarioMatrix::parse("workload mg extra\n"), Error);
  EXPECT_THROW(ScenarioMatrix::load("/nonexistent/file.campaign"), Error);
}

// ---------------------------------------------------- outcome round trips

TEST(OutcomeIoTest, OutcomeJsonRoundTripsForEveryStrategy) {
  auto sim = sim::MachineSimulator::paper_platform();
  const auto app = workloads::make_mg_model(sim);
  for (const char* strategy : {"exhaustive", "online", "estimator"}) {
    auto simulator = sim::MachineSimulator::paper_platform();
    const auto outcome = tuner::Session::on(simulator)
                             .workload(app.workload)
                             .context(app.context)
                             .strategy(strategy)
                             .run();
    const auto back = tuner::outcome_from_json(
        Json::parse(tuner::outcome_to_json(outcome).dump()));
    EXPECT_EQ(json_of(back), json_of(outcome)) << strategy;
    // The parsed outcome is a working TuningOutcome, not just a blob: the
    // human-readable report regenerates identically.
    EXPECT_EQ(back.to_text(), outcome.to_text()) << strategy;
    EXPECT_EQ(back.sweep.has_value(), std::string(strategy) == "exhaustive");
  }
}

// ------------------------------------------------------------------ store

TEST(OutcomeStoreTest, SavesLoadsAndInvalidates) {
  StoreDir dir("hmpt_store_test");
  const OutcomeStore store(dir.path());

  Scenario s;
  s.workload = parse_workload_spec("mg");
  s.platform = "xeon-max";
  s.strategy = "estimator";
  s.repetitions = 1;
  EXPECT_FALSE(store.contains(s));
  EXPECT_EQ(store.load(s), std::nullopt);

  const auto outcome = CampaignRunner::execute(s);
  store.save(s, outcome);
  EXPECT_TRUE(store.contains(s));
  const auto loaded = store.load(s);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(json_of(*loaded), json_of(outcome));

  // A different scenario misses even though one outcome is stored.
  Scenario other = s;
  other.repetitions = 2;
  EXPECT_FALSE(store.contains(other));

  // A corrupt file (truncation, interference) is quarantined to
  // <fingerprint>.json.corrupt and reads as a miss — the scenario
  // re-executes instead of the campaign aborting.
  {
    std::ofstream os(store.path_for(s));
    os << "{ not json";
  }
  EXPECT_EQ(store.load(s), std::nullopt);
  EXPECT_FALSE(store.contains(s));
  EXPECT_TRUE(std::filesystem::exists(store.path_for(s) + ".corrupt"));

  // The quarantined fingerprint is writable again: a clean save restores
  // it, and the quarantine file does not shadow the healthy one.
  store.save(s, outcome);
  const auto healed = store.load(s);
  ASSERT_TRUE(healed.has_value());
  EXPECT_EQ(json_of(*healed), json_of(outcome));
}

TEST(OutcomeStoreTest, SaveQuarantinesDamagedExistingFile) {
  StoreDir dir("hmpt_store_damaged_save");
  const OutcomeStore store(dir.path());

  Scenario s;
  s.workload = parse_workload_spec("mg");
  s.platform = "xeon-max";
  s.strategy = "estimator";
  s.repetitions = 1;
  const auto outcome = CampaignRunner::execute(s);

  // A damaged file already sits at the fingerprint's path (e.g. a torn
  // external copy). save() must quarantine it and publish the honest
  // outcome instead of reporting a determinism conflict.
  std::filesystem::create_directories(
      std::filesystem::path(dir.path()) / "outcomes");
  {
    std::ofstream os(store.path_for(s));
    os << "truncated";
  }
  store.save(s, outcome);
  const auto loaded = store.load(s);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(json_of(*loaded), json_of(outcome));
  EXPECT_TRUE(std::filesystem::exists(store.path_for(s) + ".corrupt"));

  // A *well-formed* conflicting outcome is still a loud failure.
  auto conflicting = outcome;
  conflicting.speedup += 1.0;
  EXPECT_THROW(store.save(s, conflicting), Error);
}

TEST(OutcomeStoreTest, LoadsByFingerprintAlone) {
  StoreDir dir("hmpt_store_by_fp");
  const OutcomeStore store(dir.path());

  Scenario s;
  s.workload = parse_workload_spec("mg");
  s.platform = "xeon-max";
  s.strategy = "estimator";
  s.repetitions = 1;
  EXPECT_EQ(store.load_by_fingerprint(s.fingerprint()), std::nullopt);

  const auto outcome = CampaignRunner::execute(s);
  store.save(s, outcome);
  const auto loaded = store.load_by_fingerprint(s.fingerprint());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(json_of(*loaded), json_of(outcome));
}

TEST(OutcomeStoreTest, ConcurrentIdenticalSavesBothSucceed) {
  StoreDir dir("hmpt_store_race");
  const OutcomeStore store(dir.path());

  Scenario s;
  s.workload = parse_workload_spec("mg");
  s.platform = "xeon-max";
  s.strategy = "estimator";
  s.repetitions = 1;
  const auto outcome = CampaignRunner::execute(s);

  // Two writers racing the same fingerprint with the same bytes: the
  // loser of the atomic publish must notice the winner wrote identical
  // content and return silently (daemon workers + a concurrent batch run
  // share stores this way).
  std::vector<std::thread> writers;
  std::atomic<int> failures{0};
  for (int t = 0; t < 2; ++t)
    writers.emplace_back([&] {
      try {
        store.save(s, outcome);
      } catch (const Error&) {
        ++failures;
      }
    });
  for (auto& writer : writers) writer.join();
  EXPECT_EQ(failures.load(), 0);
  const auto loaded = store.load(s);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(json_of(*loaded), json_of(outcome));
}

TEST(OutcomeStoreTest, ConflictingSaveForSameFingerprintThrows) {
  StoreDir dir("hmpt_store_conflict");
  const OutcomeStore store(dir.path());

  Scenario s;
  s.workload = parse_workload_spec("mg");
  s.platform = "xeon-max";
  s.strategy = "estimator";
  s.repetitions = 1;
  const auto outcome = CampaignRunner::execute(s);
  store.save(s, outcome);

  // Same fingerprint, different bytes: a silent overwrite (or silent
  // drop) would poison the cache, so this must fail loudly.
  auto tampered = outcome;
  tampered.speedup += 1.0;
  EXPECT_THROW(store.save(s, tampered), Error);
  // The first write survives untouched.
  const auto loaded = store.load(s);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(json_of(*loaded), json_of(outcome));
}

// ----------------------------------------------------------------- runner

class CampaignRunnerTest : public ::testing::Test {
 protected:
  /// The acceptance-criteria matrix: 3 workloads x {xeon-max, spr-cxl} x
  /// {exhaustive, estimator, online} = 18 scenarios.
  static std::vector<Scenario> scenarios() {
    ScenarioMatrix matrix;
    matrix.workloads = {
        parse_workload_spec("mg"),
        parse_workload_spec("stream:array_gb=1,iterations=2"),
        parse_workload_spec("pointer-chase:accesses=1e8,window_gb=1")};
    matrix.platforms = {"xeon-max", "spr-cxl"};
    matrix.strategies = {"exhaustive", "estimator", "online"};
    matrix.repetitions = 1;
    return matrix.expand();
  }
};

TEST_F(CampaignRunnerTest, DryRunPlansWithoutExecuting) {
  StoreDir dir("hmpt_campaign_dry");
  CampaignOptions options;
  options.output_dir = dir.path();
  options.dry_run = true;

  const auto scenario_list = scenarios();
  ASSERT_GE(scenario_list.size(), 12u);
  const auto result = CampaignRunner(options).run(scenario_list);
  EXPECT_EQ(result.planned, static_cast<int>(scenario_list.size()));
  EXPECT_EQ(result.executed, 0);
  EXPECT_TRUE(result.ok());
  // Nothing was stored — a dry run never even creates the directories —
  // and the dry-run plan is exactly the real plan.
  EXPECT_FALSE(fs::exists(fs::path(dir.path()) / "outcomes"));
  EXPECT_EQ(plan_table(scenario_list).to_text(),
            plan_table(scenarios()).to_text());
}

TEST_F(CampaignRunnerTest, ResumeSkipsEverythingAndReproducesArtifacts) {
  StoreDir dir("hmpt_campaign_resume");
  CampaignOptions options;
  options.output_dir = dir.path();
  options.scenario_jobs = 4;

  const auto scenario_list = scenarios();
  const auto cold = CampaignRunner(options).run(scenario_list);
  EXPECT_EQ(cold.executed, static_cast<int>(scenario_list.size()));
  EXPECT_EQ(cold.cached, 0);
  ASSERT_TRUE(cold.ok());

  const auto paths = write_artifacts(cold, options.output_dir);
  ASSERT_EQ(paths.size(), 3u);  // runs.csv, summary.json, status.json
  std::ifstream csv(paths[0]);
  std::stringstream cold_csv;
  cold_csv << csv.rdbuf();
  ASSERT_FALSE(cold_csv.str().empty());

  // Re-run with resume: zero executions, every outcome served from the
  // store, byte-identical runs.csv.
  options.resume = true;
  options.scenario_jobs = 1;  // different concurrency must not matter
  const auto warm = CampaignRunner(options).run(scenario_list);
  EXPECT_EQ(warm.executed, 0);
  EXPECT_EQ(warm.cached, static_cast<int>(scenario_list.size()));
  EXPECT_EQ(runs_table(warm).to_csv(), cold_csv.str());
  for (std::size_t i = 0; i < scenario_list.size(); ++i)
    EXPECT_EQ(json_of(warm.runs[i].outcome), json_of(cold.runs[i].outcome));
}

TEST_F(CampaignRunnerTest, ConcurrencyDoesNotChangeResults) {
  StoreDir dir_serial("hmpt_campaign_serial");
  StoreDir dir_parallel("hmpt_campaign_parallel");
  const auto scenario_list = scenarios();

  CampaignOptions serial;
  serial.output_dir = dir_serial.path();
  serial.scenario_jobs = 1;
  CampaignOptions parallel;
  parallel.output_dir = dir_parallel.path();
  parallel.scenario_jobs = 0;  // all hardware threads

  const auto a = CampaignRunner(serial).run(scenario_list);
  const auto b = CampaignRunner(parallel).run(scenario_list);
  EXPECT_EQ(runs_table(a).to_csv(), runs_table(b).to_csv());
  // The deterministic summary is byte-identical across concurrency; the
  // volatile execution log agrees on counts (but not wall times).
  EXPECT_EQ(summary_json(a).dump(), summary_json(b).dump());
  EXPECT_EQ(status_json(a).at("executed").as_number(),
            status_json(b).at("executed").as_number());
}

TEST_F(CampaignRunnerTest, ErrorPolicyKeepGoingVsFailFast) {
  // "recorded" with a missing file passes matrix validation (the name is
  // registered) but throws when the factory runs — a realistic mid-
  // campaign failure.
  Scenario bad;
  bad.workload = parse_workload_spec("recorded:path=/nonexistent.profile");
  bad.platform = "xeon-max";
  bad.strategy = "estimator";
  bad.repetitions = 1;
  Scenario good;
  good.workload = parse_workload_spec("mg");
  good.platform = "xeon-max";
  good.strategy = "estimator";
  good.repetitions = 1;

  StoreDir dir("hmpt_campaign_errors");
  CampaignOptions options;
  options.output_dir = dir.path();
  options.keep_going = true;
  const auto result = CampaignRunner(options).run({bad, good});
  EXPECT_EQ(result.failed, 1);
  EXPECT_EQ(result.executed, 1);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.runs[0].status, ScenarioRun::Status::Failed);
  EXPECT_FALSE(result.runs[0].error.empty());
  EXPECT_EQ(result.runs[1].status, ScenarioRun::Status::Executed);
  // The failure is recorded in summary.json for post-mortems.
  const auto summary = summary_json(result);
  EXPECT_EQ(summary.at("failed").as_number(), 1.0);

  options.keep_going = false;
  EXPECT_THROW(CampaignRunner(options).run({bad, good}), Error);
}

}  // namespace
}  // namespace hmpt::campaign
