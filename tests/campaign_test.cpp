// Tests for the campaign engine: workload registry, scenario matrix +
// fingerprints, outcome JSON round trips, the on-disk outcome store in
// both layouts (one-file-per-outcome dir and packed append-only log,
// including torn-tail crash recovery), the resumable CampaignRunner and
// the static HTML report.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>

#include "campaign/aggregate.h"
#include "campaign/campaign.h"
#include "campaign/platforms.h"
#include "core/outcome_io.h"
#include "core/session.h"
#include "report/report.h"
#include "workloads/app_models.h"
#include "workloads/trace_io.h"

namespace hmpt::campaign {
namespace {

namespace fs = std::filesystem;

/// Outcomes compare equal iff their (lossless) serialisations agree.
std::string json_of(const tuner::TuningOutcome& outcome) {
  return tuner::outcome_to_json(outcome).dump(-1);
}

/// A fresh store directory per test, removed on scope exit.
class StoreDir {
 public:
  explicit StoreDir(const std::string& name)
      : path_((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path_);
  }
  ~StoreDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ---------------------------------------------------------- workload specs

TEST(WorkloadSpecTest, ParsesAndCanonicalises) {
  const auto bare = parse_workload_spec("mg");
  EXPECT_EQ(bare.name, "mg");
  EXPECT_TRUE(bare.params.empty());
  EXPECT_EQ(bare.to_string(), "mg");

  // Parameter order does not matter: to_string() sorts keys, so both
  // spellings fingerprint (and dedup) identically.
  const auto a = parse_workload_spec("stream:iterations=4,array_gb=2");
  const auto b = parse_workload_spec("stream:array_gb=2,iterations=4");
  EXPECT_EQ(a.to_string(), "stream:array_gb=2,iterations=4");
  EXPECT_EQ(a.to_string(), b.to_string());
}

TEST(WorkloadSpecTest, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_workload_spec(""), Error);
  EXPECT_THROW(parse_workload_spec(":a=1"), Error);
  EXPECT_THROW(parse_workload_spec("stream:array_gb"), Error);
  EXPECT_THROW(parse_workload_spec("stream:=2"), Error);
  EXPECT_THROW(parse_workload_spec("stream:a=1,a=2"), Error);
}

// -------------------------------------------------------------- registry

TEST(WorkloadRegistryTest, KnowsTheBuiltIns) {
  const auto names = WorkloadRegistry::instance().names();
  for (const char* expected :
       {"mg", "bt", "lu", "sp", "ua", "is", "kwave", "stream",
        "pointer-chase", "random-sum", "recorded"})
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
}

TEST(WorkloadRegistryTest, ConstructsParameterisedWorkloads) {
  auto sim = sim::MachineSimulator::paper_platform();
  const auto stream = WorkloadRegistry::instance().create(
      "stream", sim, {{"array_gb", "2"}, {"iterations", "4"}});
  ASSERT_NE(stream.workload, nullptr);
  EXPECT_EQ(stream.workload->num_groups(), 3);
  EXPECT_DOUBLE_EQ(stream.workload->total_bytes(), 3 * 2.0 * GB);

  // Paper app models carry their calibrated execution context.
  const auto mg = WorkloadRegistry::instance().create("mg", sim);
  EXPECT_TRUE(mg.context.has_value());
  EXPECT_EQ(mg.workload->name(), "NPB: Multi-Grid");
}

TEST(WorkloadRegistryTest, RejectsUnknownNamesAndParameters) {
  auto sim = sim::MachineSimulator::paper_platform();
  auto& registry = WorkloadRegistry::instance();
  EXPECT_THROW(registry.create("frobnicate", sim), Error);
  EXPECT_THROW(registry.create("stream", sim, {{"arraygb", "2"}}), Error);
  EXPECT_THROW(registry.create("stream", sim, {{"array_gb", "abc"}}), Error);
  EXPECT_THROW(registry.create("mg", sim, {{"scale", "-1"}}), Error);
  EXPECT_THROW(registry.create("recorded", sim), Error);  // needs path
}

TEST(WorkloadRegistryTest, RecordedWorkloadReplaysAProfileByName) {
  auto sim = sim::MachineSimulator::paper_platform();
  const auto app = workloads::make_mg_model(sim);
  const std::string path =
      (fs::temp_directory_path() / "hmpt_registry_replay.profile").string();
  workloads::save_workload(path, *app.workload);

  const auto replayed = WorkloadRegistry::instance().create(
      "recorded", sim, {{"path", path}});
  ASSERT_NE(replayed.workload, nullptr);
  // The replay is lossless: re-serialising the replayed workload
  // reproduces the profile text byte-for-byte.
  EXPECT_EQ(workloads::serialize_workload(*replayed.workload),
            workloads::serialize_workload(*app.workload));

  // And tuning the replayed workload gives the same outcome as tuning
  // the profile parsed in-process (same groups, same trace, same noise
  // streams; profile names are sanitised, so compare recorded to
  // recorded, not to the pre-sanitisation model).
  const auto tune = [&](const workloads::Workload& w) {
    auto simulator = sim::MachineSimulator::paper_platform();
    return tuner::Session::on(simulator)
        .workload(w)
        .strategy("estimator")
        .run();
  };
  const auto parsed = workloads::parse_workload(
      workloads::serialize_workload(*app.workload));
  EXPECT_EQ(json_of(tune(*replayed.workload)), json_of(tune(parsed)));
  std::remove(path.c_str());
}

// ------------------------------------------------------------- platforms

TEST(PlatformTest, CanonicalisesAliases) {
  EXPECT_EQ(canonical_platform("spr"), "xeon-max");
  EXPECT_EQ(canonical_platform("xeon-max"), "xeon-max");
  EXPECT_EQ(canonical_platform("spr1"), "xeon-max-1s");
  EXPECT_TRUE(is_platform("spr-cxl"));
  EXPECT_FALSE(is_platform("frobnicate"));
  EXPECT_THROW(canonical_platform("frobnicate"), Error);
  EXPECT_EQ(make_platform("spr-cxl").machine().num_memory_tiers(), 3);
}

// ----------------------------------------------------------- fingerprints

TEST(ScenarioTest, FingerprintIsStableAndContentAddressed) {
  Scenario s;
  s.workload = parse_workload_spec("mg");
  s.platform = "xeon-max";
  s.strategy = "exhaustive";

  const std::string base = s.fingerprint();
  EXPECT_EQ(base.size(), 16u);
  EXPECT_EQ(base, s.fingerprint());  // deterministic

  // Every semantic field invalidates the fingerprint...
  for (const auto& mutate : std::vector<std::function<void(Scenario&)>>{
           [](Scenario& x) { x.workload = parse_workload_spec("mg:scale=2"); },
           [](Scenario& x) { x.platform = "spr-cxl"; },
           [](Scenario& x) { x.strategy = "online"; },
           [](Scenario& x) { x.tiers = 2; },
           [](Scenario& x) { x.budget_gb = 16.0; },
           [](Scenario& x) { x.tier_budgets_gb = {{1, 32.0}}; },
           [](Scenario& x) { x.repetitions = 5; },
           [](Scenario& x) { x.top_k = 7; }}) {
    Scenario changed = s;
    mutate(changed);
    EXPECT_NE(changed.fingerprint(), base) << changed.canonical();
  }

  // ...and tier-budget declaration order does not (canonical() sorts).
  Scenario two_budgets = s;
  two_budgets.tier_budgets_gb = {{2, 64.0}, {1, 32.0}};
  Scenario sorted = s;
  sorted.tier_budgets_gb = {{1, 32.0}, {2, 64.0}};
  EXPECT_EQ(two_budgets.fingerprint(), sorted.fingerprint());
}

TEST(ScenarioTest, RecordedProfileContentsAreFingerprinted) {
  // A recorded workload is the *contents* of its profile: re-recording
  // the file must invalidate the cached scenario even though the path
  // (and so the spec text) is unchanged.
  const std::string path =
      (fs::temp_directory_path() / "hmpt_fp_profile.profile").string();
  Scenario s;
  s.workload = parse_workload_spec("recorded:path=" + path);
  s.platform = "xeon-max";
  s.strategy = "estimator";

  auto sim = sim::MachineSimulator::paper_platform();
  workloads::save_workload(path, *workloads::make_mg_model(sim).workload);
  const std::string fp_mg = s.fingerprint();
  EXPECT_EQ(fp_mg, s.fingerprint());  // stable while the file is stable

  workloads::save_workload(path, *workloads::make_bt_model(sim).workload);
  EXPECT_NE(s.fingerprint(), fp_mg);  // contents changed -> cache miss

  std::remove(path.c_str());
  const std::string fp_missing = s.fingerprint();  // planning never throws
  EXPECT_NE(fp_missing, fp_mg);
  EXPECT_EQ(fp_missing, s.fingerprint());
}

TEST(ScenarioTest, JsonRoundTrips) {
  Scenario s;
  s.workload = parse_workload_spec("stream:array_gb=2");
  s.platform = "spr-cxl";
  s.strategy = "estimator";
  s.tiers = 3;
  s.budget_gb = 16.0;
  s.tier_budgets_gb = {{2, 64.0}};
  s.repetitions = 2;
  s.top_k = 5;
  const Scenario back = Scenario::from_json(s.to_json());
  EXPECT_EQ(back.canonical(), s.canonical());
  EXPECT_EQ(back.fingerprint(), s.fingerprint());
}

// ----------------------------------------------------------------- matrix

TEST(ScenarioMatrixTest, ExpandsTheCrossProductAndDedups) {
  ScenarioMatrix matrix;
  matrix.workloads = {parse_workload_spec("mg"),
                      parse_workload_spec("kwave")};
  // "spr" is an alias of "xeon-max": the duplicate platform must fold.
  matrix.platforms = {"xeon-max", "spr", "spr-cxl"};
  matrix.strategies = {"exhaustive", "online"};
  const auto scenarios = matrix.expand();
  EXPECT_EQ(scenarios.size(), 2u * 2u * 2u);
  for (const auto& s : scenarios)
    EXPECT_TRUE(s.platform == "xeon-max" || s.platform == "spr-cxl");
}

TEST(ScenarioMatrixTest, ValidatesEveryAxis) {
  ScenarioMatrix matrix;
  matrix.workloads = {parse_workload_spec("mg")};
  matrix.platforms = {"xeon-max"};
  matrix.strategies = {"exhaustive"};
  EXPECT_EQ(matrix.expand().size(), 1u);  // the valid baseline

  auto broken = matrix;
  broken.workloads = {parse_workload_spec("frobnicate")};
  EXPECT_THROW(broken.expand(), Error);
  broken = matrix;
  broken.platforms = {"frobnicate"};
  EXPECT_THROW(broken.expand(), Error);
  broken = matrix;
  broken.strategies = {"frobnicate"};
  EXPECT_THROW(broken.expand(), Error);
  broken = matrix;
  broken.tiers = {1};
  EXPECT_THROW(broken.expand(), Error);
  broken = matrix;
  broken.budgets_gb = {-1.0};
  EXPECT_THROW(broken.expand(), Error);
  broken = matrix;
  broken.repetitions = 0;
  EXPECT_THROW(broken.expand(), Error);
  broken = matrix;
  broken.workloads.clear();
  EXPECT_THROW(broken.expand(), Error);
}

TEST(ScenarioMatrixTest, ParsesTheCampaignFileFormat) {
  const auto matrix = ScenarioMatrix::parse(
      "# nightly sweep\n"
      "workload mg\n"
      "workload stream:array_gb=2,iterations=4   # small STREAM\n"
      "platform xeon-max\n"
      "platform spr-cxl\n"
      "strategy exhaustive\n"
      "strategy estimator\n"
      "\n"
      "tiers 0\n"
      "budget-gb 0\n"
      "budget-gb 16\n"
      "tier-budget-gb 2:64\n"
      "reps 2\n"
      "top-k 4\n");
  EXPECT_EQ(matrix.workloads.size(), 2u);
  EXPECT_EQ(matrix.platforms.size(), 2u);
  EXPECT_EQ(matrix.strategies.size(), 2u);
  EXPECT_EQ(matrix.budgets_gb.size(), 2u);
  ASSERT_EQ(matrix.tier_budgets_gb.size(), 1u);
  EXPECT_EQ(matrix.tier_budgets_gb[0].first, 2);
  EXPECT_EQ(matrix.repetitions, 2);
  EXPECT_EQ(matrix.top_k, 4);
  EXPECT_EQ(matrix.expand().size(), 2u * 2u * 2u * 2u);

  // '#' only comments at line start or after whitespace: a '#' inside a
  // value (e.g. a profile path) is data.
  const auto hashed = ScenarioMatrix::parse(
      "workload recorded:path=/data/run#3.profile  # re-recorded\n");
  ASSERT_EQ(hashed.workloads.size(), 1u);
  EXPECT_EQ(hashed.workloads[0].params.at("path"), "/data/run#3.profile");

  EXPECT_THROW(ScenarioMatrix::parse("frobnicate mg\n"), Error);
  EXPECT_THROW(ScenarioMatrix::parse("workload\n"), Error);
  EXPECT_THROW(ScenarioMatrix::parse("reps two\n"), Error);
  EXPECT_THROW(ScenarioMatrix::parse("workload mg extra\n"), Error);
  EXPECT_THROW(ScenarioMatrix::load("/nonexistent/file.campaign"), Error);
}

/// The Error text a callable raises; empty when it does not throw.
std::string error_text_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.what();
  }
  return "";
}

TEST(ScenarioMatrixTest, MalformedNumbersFailWithLineNumberedErrors) {
  // Partial consumption, overflow and non-finite spellings each used to
  // slip through the std::stoi/std::stod family (or crash it); all must
  // now raise one structured error naming the line and the bad token.
  const auto tiers = error_text_of([] {
    ScenarioMatrix::parse("workload mg\ntiers 2x\n");
  });
  EXPECT_NE(tiers.find("line 2"), std::string::npos) << tiers;
  EXPECT_NE(tiers.find("not an integer: '2x'"), std::string::npos) << tiers;

  const auto budget = error_text_of([] {
    ScenarioMatrix::parse("budget-gb inf\n");
  });
  EXPECT_NE(budget.find("line 1"), std::string::npos) << budget;
  EXPECT_NE(budget.find("not a finite number: 'inf'"), std::string::npos)
      << budget;

  EXPECT_NE(error_text_of([] { ScenarioMatrix::parse("budget-gb nan\n"); })
                .find("not a finite number"),
            std::string::npos);
  EXPECT_NE(error_text_of([] { ScenarioMatrix::parse("budget-gb 1e999\n"); })
                .find("not a finite number"),
            std::string::npos);
  EXPECT_NE(error_text_of([] {
              ScenarioMatrix::parse("reps 99999999999999999999\n");
            }).find("not an integer"),
            std::string::npos);
  EXPECT_NE(error_text_of([] { ScenarioMatrix::parse("top-k 3.5\n"); })
                .find("not an integer"),
            std::string::npos);
  EXPECT_NE(error_text_of([] {
              ScenarioMatrix::parse("tier-budget-gb 2:4x\n");
            }).find("not a finite number"),
            std::string::npos);
}

TEST(WorkloadRegistryTest, MalformedParametersNameTheOffendingKey) {
  auto sim = sim::MachineSimulator::paper_platform();
  auto& registry = WorkloadRegistry::instance();

  // strtod used to accept "2x" (partial consumption) and "inf"/"nan"
  // (non-finite array sizes); now every spelling fails with an error
  // naming the parameter so a campaign author can find the typo.
  const auto partial = error_text_of([&] {
    registry.create("stream", sim, {{"array_gb", "2x"}});
  });
  EXPECT_NE(partial.find("'array_gb'"), std::string::npos) << partial;
  EXPECT_NE(partial.find("not a finite number: '2x'"), std::string::npos)
      << partial;

  for (const char* bad : {"inf", "-inf", "nan", "1e999", ""})
    EXPECT_NE(error_text_of([&] {
                registry.create("stream", sim, {{"array_gb", bad}});
              }).find("not a finite number"),
              std::string::npos)
        << bad;

  const auto fractional = error_text_of([&] {
    registry.create("stream", sim, {{"iterations", "3.5"}});
  });
  EXPECT_NE(fractional.find("'iterations'"), std::string::npos) << fractional;
  EXPECT_NE(fractional.find("not an integer: '3.5'"), std::string::npos)
      << fractional;
}

// ---------------------------------------------------- outcome round trips

TEST(OutcomeIoTest, OutcomeJsonRoundTripsForEveryStrategy) {
  auto sim = sim::MachineSimulator::paper_platform();
  const auto app = workloads::make_mg_model(sim);
  for (const char* strategy : {"exhaustive", "online", "estimator"}) {
    auto simulator = sim::MachineSimulator::paper_platform();
    const auto outcome = tuner::Session::on(simulator)
                             .workload(app.workload)
                             .context(app.context)
                             .strategy(strategy)
                             .run();
    const auto back = tuner::outcome_from_json(
        Json::parse(tuner::outcome_to_json(outcome).dump()));
    EXPECT_EQ(json_of(back), json_of(outcome)) << strategy;
    // The parsed outcome is a working TuningOutcome, not just a blob: the
    // human-readable report regenerates identically.
    EXPECT_EQ(back.to_text(), outcome.to_text()) << strategy;
    EXPECT_EQ(back.sweep.has_value(), std::string(strategy) == "exhaustive");
  }
}

// ------------------------------------------------------------------ store

TEST(OutcomeStoreTest, SavesLoadsAndInvalidates) {
  StoreDir dir("hmpt_store_test");
  const OutcomeStore store(dir.path());

  Scenario s;
  s.workload = parse_workload_spec("mg");
  s.platform = "xeon-max";
  s.strategy = "estimator";
  s.repetitions = 1;
  EXPECT_FALSE(store.contains(s));
  EXPECT_EQ(store.load(s), std::nullopt);

  const auto outcome = CampaignRunner::execute(s);
  store.save(s, outcome);
  EXPECT_TRUE(store.contains(s));
  const auto loaded = store.load(s);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(json_of(*loaded), json_of(outcome));

  // A different scenario misses even though one outcome is stored.
  Scenario other = s;
  other.repetitions = 2;
  EXPECT_FALSE(store.contains(other));

  // A corrupt file (truncation, interference) is quarantined to
  // <fingerprint>.json.corrupt and reads as a miss — the scenario
  // re-executes instead of the campaign aborting.
  {
    std::ofstream os(store.path_for(s));
    os << "{ not json";
  }
  EXPECT_EQ(store.load(s), std::nullopt);
  EXPECT_FALSE(store.contains(s));
  EXPECT_TRUE(std::filesystem::exists(store.path_for(s) + ".corrupt"));

  // The quarantined fingerprint is writable again: a clean save restores
  // it, and the quarantine file does not shadow the healthy one.
  store.save(s, outcome);
  const auto healed = store.load(s);
  ASSERT_TRUE(healed.has_value());
  EXPECT_EQ(json_of(*healed), json_of(outcome));
}

TEST(OutcomeStoreTest, SaveQuarantinesDamagedExistingFile) {
  StoreDir dir("hmpt_store_damaged_save");
  const OutcomeStore store(dir.path());

  Scenario s;
  s.workload = parse_workload_spec("mg");
  s.platform = "xeon-max";
  s.strategy = "estimator";
  s.repetitions = 1;
  const auto outcome = CampaignRunner::execute(s);

  // A damaged file already sits at the fingerprint's path (e.g. a torn
  // external copy). save() must quarantine it and publish the honest
  // outcome instead of reporting a determinism conflict.
  std::filesystem::create_directories(
      std::filesystem::path(dir.path()) / "outcomes");
  {
    std::ofstream os(store.path_for(s));
    os << "truncated";
  }
  store.save(s, outcome);
  const auto loaded = store.load(s);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(json_of(*loaded), json_of(outcome));
  EXPECT_TRUE(std::filesystem::exists(store.path_for(s) + ".corrupt"));

  // A *well-formed* conflicting outcome is still a loud failure.
  auto conflicting = outcome;
  conflicting.speedup += 1.0;
  EXPECT_THROW(store.save(s, conflicting), Error);
}

TEST(OutcomeStoreTest, LoadsByFingerprintAlone) {
  StoreDir dir("hmpt_store_by_fp");
  const OutcomeStore store(dir.path());

  Scenario s;
  s.workload = parse_workload_spec("mg");
  s.platform = "xeon-max";
  s.strategy = "estimator";
  s.repetitions = 1;
  EXPECT_EQ(store.load_by_fingerprint(s.fingerprint()), std::nullopt);

  const auto outcome = CampaignRunner::execute(s);
  store.save(s, outcome);
  const auto loaded = store.load_by_fingerprint(s.fingerprint());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(json_of(*loaded), json_of(outcome));
}

TEST(OutcomeStoreTest, ConcurrentIdenticalSavesBothSucceed) {
  StoreDir dir("hmpt_store_race");
  const OutcomeStore store(dir.path());

  Scenario s;
  s.workload = parse_workload_spec("mg");
  s.platform = "xeon-max";
  s.strategy = "estimator";
  s.repetitions = 1;
  const auto outcome = CampaignRunner::execute(s);

  // Two writers racing the same fingerprint with the same bytes: the
  // loser of the atomic publish must notice the winner wrote identical
  // content and return silently (daemon workers + a concurrent batch run
  // share stores this way).
  std::vector<std::thread> writers;
  std::atomic<int> failures{0};
  for (int t = 0; t < 2; ++t)
    writers.emplace_back([&] {
      try {
        store.save(s, outcome);
      } catch (const Error&) {
        ++failures;
      }
    });
  for (auto& writer : writers) writer.join();
  EXPECT_EQ(failures.load(), 0);
  const auto loaded = store.load(s);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(json_of(*loaded), json_of(outcome));
}

TEST(OutcomeStoreTest, ConflictingSaveForSameFingerprintThrows) {
  StoreDir dir("hmpt_store_conflict");
  const OutcomeStore store(dir.path());

  Scenario s;
  s.workload = parse_workload_spec("mg");
  s.platform = "xeon-max";
  s.strategy = "estimator";
  s.repetitions = 1;
  const auto outcome = CampaignRunner::execute(s);
  store.save(s, outcome);

  // Same fingerprint, different bytes: a silent overwrite (or silent
  // drop) would poison the cache, so this must fail loudly.
  auto tampered = outcome;
  tampered.speedup += 1.0;
  EXPECT_THROW(store.save(s, tampered), Error);
  // The first write survives untouched.
  const auto loaded = store.load(s);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(json_of(*loaded), json_of(outcome));
}

// ------------------------------------------------------------ packed store

class PackedStoreTest : public ::testing::Test {
 protected:
  static Scenario scenario_with_reps(int reps) {
    Scenario s;
    s.workload = parse_workload_spec("mg");
    s.platform = "xeon-max";
    s.strategy = "estimator";
    s.repetitions = reps;
    return s;
  }
  static std::uintmax_t log_size(const std::string& dir) {
    return fs::file_size(fs::path(dir) / "outcomes.log");
  }
};

TEST_F(PackedStoreTest, SavesLoadsAndMatchesTheDirFormatRecordForRecord) {
  StoreDir dir("hmpt_packed_basic");
  StoreDir twin("hmpt_packed_basic_twin");
  const OutcomeStore packed(dir.path(), StoreFormat::Packed);
  const OutcomeStore plain(twin.path(), StoreFormat::Dir);
  EXPECT_EQ(packed.format(), StoreFormat::Packed);

  const auto s1 = scenario_with_reps(1);
  const auto s2 = scenario_with_reps(2);
  EXPECT_FALSE(packed.contains(s1));
  EXPECT_EQ(packed.load(s1), std::nullopt);

  const auto o1 = CampaignRunner::execute(s1);
  const auto o2 = CampaignRunner::execute(s2);
  for (const auto* store : {&packed, &plain}) {
    store->save(s1, o1);
    store->save(s2, o2);
  }
  EXPECT_TRUE(packed.contains(s1));
  EXPECT_TRUE(packed.contains(s2));
  const auto loaded = packed.load_by_fingerprint(s1.fingerprint());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(json_of(*loaded), json_of(o1));

  // The payload bytes — the merge/report currency — are format-
  // independent: both stores hold the identical record set.
  EXPECT_EQ(packed.load_all_payloads(), plain.load_all_payloads());
  ASSERT_EQ(packed.load_all_payloads().size(), 2u);

  // Identical re-save is a silent no-op: no appended record.
  const auto size_before = log_size(dir.path());
  packed.save(s1, o1);
  EXPECT_EQ(log_size(dir.path()), size_before);

  // Conflicting bytes for a stored fingerprint fail loudly, first write
  // wins.
  auto tampered = o1;
  tampered.speedup += 1.0;
  EXPECT_THROW(packed.save(s1, tampered), Error);
  EXPECT_EQ(json_of(*packed.load(s1)), json_of(o1));

  // path_for is a dir-format concept; the packed store refuses it.
  EXPECT_THROW(packed.path_for(s1), Error);
}

TEST_F(PackedStoreTest, DetectsFormatsAndRefusesAMismatchedOpen) {
  StoreDir dir("hmpt_packed_detect");
  // No store yet: nothing to detect, open_existing falls back to dir.
  EXPECT_EQ(detect_store_format(dir.path()), std::nullopt);
  EXPECT_EQ(OutcomeStore::open_existing(dir.path()).format(),
            StoreFormat::Dir);

  const auto s = scenario_with_reps(1);
  {
    const OutcomeStore packed(dir.path(), StoreFormat::Packed);
    packed.save(s, CampaignRunner::execute(s));
  }
  EXPECT_EQ(detect_store_format(dir.path()), StoreFormat::Packed);
  // open_existing picks the on-disk format; an explicit wrong format is
  // refused with a pointer at --store-format instead of a second store
  // silently growing next to the first.
  EXPECT_TRUE(OutcomeStore::open_existing(dir.path()).contains(s));
  EXPECT_THROW(OutcomeStore(dir.path(), StoreFormat::Dir), Error);

  StoreDir plain_dir("hmpt_dir_detect");
  {
    const OutcomeStore plain(plain_dir.path(), StoreFormat::Dir);
    plain.save(s, CampaignRunner::execute(s));
  }
  EXPECT_EQ(detect_store_format(plain_dir.path()), StoreFormat::Dir);
  EXPECT_TRUE(OutcomeStore::open_existing(plain_dir.path()).contains(s));
  EXPECT_THROW(OutcomeStore(plain_dir.path(), StoreFormat::Packed), Error);

  EXPECT_EQ(store_format_from("dir"), StoreFormat::Dir);
  EXPECT_EQ(store_format_from("packed"), StoreFormat::Packed);
  EXPECT_THROW(store_format_from("sqlite"), Error);
}

TEST_F(PackedStoreTest, TornTailIsSkippedOnLoadAndRepairedByReexecution) {
  StoreDir dir("hmpt_packed_torn");
  const auto s1 = scenario_with_reps(1);
  const auto s2 = scenario_with_reps(2);
  const auto o1 = CampaignRunner::execute(s1);
  const auto o2 = CampaignRunner::execute(s2);

  std::uintmax_t size_after_first = 0;
  {
    const OutcomeStore store(dir.path(), StoreFormat::Packed);
    store.save(s1, o1);
    size_after_first = log_size(dir.path());
    store.save(s2, o2);
  }

  // Crash mid-append: the second record's frame is half on disk. A
  // reader must keep every record before the tear and treat the torn
  // fingerprint as a miss — never abort, never trust garbage.
  fs::resize_file(fs::path(dir.path()) / "outcomes.log",
                  size_after_first + 17);
  {
    const OutcomeStore store = OutcomeStore::open_existing(dir.path());
    EXPECT_TRUE(store.contains(s1));
    EXPECT_FALSE(store.contains(s2));
    EXPECT_EQ(json_of(*store.load(s1)), json_of(o1));
    EXPECT_EQ(store.load(s2), std::nullopt);
    ASSERT_EQ(store.load_all_payloads().size(), 1u);

    // Re-execution (what --resume does for a missing fingerprint) repairs
    // the store: the torn bytes are truncated away and the record lands
    // whole.
    store.save(s2, o2);
    EXPECT_EQ(json_of(*store.load(s2)), json_of(o2));
  }
  // The repaired log parses cleanly from scratch, index or not.
  const OutcomeStore reread = OutcomeStore::open_existing(dir.path());
  EXPECT_EQ(reread.load_all_payloads().size(), 2u);
  EXPECT_EQ(json_of(*reread.load(s1)), json_of(o1));
}

TEST_F(PackedStoreTest, CorruptOrMissingIndexNeverChangesAnswers) {
  StoreDir dir("hmpt_packed_idx");
  const auto s1 = scenario_with_reps(1);
  const auto s2 = scenario_with_reps(2);
  const auto o1 = CampaignRunner::execute(s1);
  const auto o2 = CampaignRunner::execute(s2);
  {
    const OutcomeStore store(dir.path(), StoreFormat::Packed);
    store.save(s1, o1);
    store.save(s2, o2);
  }
  const auto idx = fs::path(dir.path()) / "outcomes.idx";
  ASSERT_TRUE(fs::exists(idx));

  // The index is a disposable cache; garbage in it must be ignored in
  // favour of a log scan.
  {
    std::ofstream os(idx, std::ios::binary);
    os << "zzzz not an index\n";
  }
  {
    const OutcomeStore store = OutcomeStore::open_existing(dir.path());
    EXPECT_EQ(json_of(*store.load(s1)), json_of(o1));
    EXPECT_EQ(json_of(*store.load(s2)), json_of(o2));
  }

  // An index pointing at the wrong offset is caught by per-record
  // verification and answered from a rescan, not by returning the wrong
  // scenario's bytes.
  {
    std::ofstream os(idx, std::ios::binary);
    os << s2.fingerprint() << " 0 10\n";
  }
  {
    const OutcomeStore store = OutcomeStore::open_existing(dir.path());
    EXPECT_EQ(json_of(*store.load(s2)), json_of(o2));
  }

  // Deleting it entirely is also fine; the next save writes a fresh one.
  fs::remove(idx);
  {
    const OutcomeStore store = OutcomeStore::open_existing(dir.path());
    EXPECT_EQ(store.load_all_payloads().size(), 2u);
    const auto s3 = scenario_with_reps(3);
    store.save(s3, CampaignRunner::execute(s3));
    EXPECT_TRUE(fs::exists(idx));
    EXPECT_EQ(store.load_all_payloads().size(), 3u);
  }
}

TEST_F(PackedStoreTest, DamagedRecordIsSupersededNotConflicting) {
  StoreDir dir("hmpt_packed_damaged");
  const auto s = scenario_with_reps(1);
  const auto o = CampaignRunner::execute(s);

  // A frame-intact record whose payload is garbage (the packed analogue
  // of the dir store's quarantined file): loads miss, and a clean save
  // appends the honest record instead of raising a determinism conflict.
  fs::create_directories(dir.path());
  {
    std::ofstream os(fs::path(dir.path()) / "outcomes.log",
                     std::ios::binary);
    os << "hmpt1 " << s.fingerprint() << " 9\nnot json!\n";
  }
  const OutcomeStore store = OutcomeStore::open_existing(dir.path());
  EXPECT_EQ(store.load(s), std::nullopt);
  EXPECT_TRUE(store.load_all_payloads().empty());

  store.save(s, o);
  EXPECT_EQ(json_of(*store.load(s)), json_of(o));
  ASSERT_EQ(store.load_all_payloads().size(), 1u);

  // A *well-formed* conflicting outcome is still a loud failure.
  auto conflicting = o;
  conflicting.speedup += 1.0;
  EXPECT_THROW(store.save(s, conflicting), Error);
}

// ----------------------------------------------------------------- runner

class CampaignRunnerTest : public ::testing::Test {
 protected:
  /// The acceptance-criteria matrix: 3 workloads x {xeon-max, spr-cxl} x
  /// {exhaustive, estimator, online} = 18 scenarios.
  static std::vector<Scenario> scenarios() {
    ScenarioMatrix matrix;
    matrix.workloads = {
        parse_workload_spec("mg"),
        parse_workload_spec("stream:array_gb=1,iterations=2"),
        parse_workload_spec("pointer-chase:accesses=1e8,window_gb=1")};
    matrix.platforms = {"xeon-max", "spr-cxl"};
    matrix.strategies = {"exhaustive", "estimator", "online"};
    matrix.repetitions = 1;
    return matrix.expand();
  }
};

TEST_F(CampaignRunnerTest, DryRunPlansWithoutExecuting) {
  StoreDir dir("hmpt_campaign_dry");
  CampaignOptions options;
  options.output_dir = dir.path();
  options.dry_run = true;

  const auto scenario_list = scenarios();
  ASSERT_GE(scenario_list.size(), 12u);
  const auto result = CampaignRunner(options).run(scenario_list);
  EXPECT_EQ(result.planned, static_cast<int>(scenario_list.size()));
  EXPECT_EQ(result.executed, 0);
  EXPECT_TRUE(result.ok());
  // Nothing was stored — a dry run never even creates the directories —
  // and the dry-run plan is exactly the real plan.
  EXPECT_FALSE(fs::exists(fs::path(dir.path()) / "outcomes"));
  EXPECT_EQ(plan_table(scenario_list).to_text(),
            plan_table(scenarios()).to_text());
}

TEST_F(CampaignRunnerTest, ResumeSkipsEverythingAndReproducesArtifacts) {
  StoreDir dir("hmpt_campaign_resume");
  CampaignOptions options;
  options.output_dir = dir.path();
  options.scenario_jobs = 4;

  const auto scenario_list = scenarios();
  const auto cold = CampaignRunner(options).run(scenario_list);
  EXPECT_EQ(cold.executed, static_cast<int>(scenario_list.size()));
  EXPECT_EQ(cold.cached, 0);
  ASSERT_TRUE(cold.ok());

  const auto paths = write_artifacts(cold, options.output_dir);
  ASSERT_EQ(paths.size(), 3u);  // runs.csv, summary.json, status.json
  std::ifstream csv(paths[0]);
  std::stringstream cold_csv;
  cold_csv << csv.rdbuf();
  ASSERT_FALSE(cold_csv.str().empty());

  // Re-run with resume: zero executions, every outcome served from the
  // store, byte-identical runs.csv.
  options.resume = true;
  options.scenario_jobs = 1;  // different concurrency must not matter
  const auto warm = CampaignRunner(options).run(scenario_list);
  EXPECT_EQ(warm.executed, 0);
  EXPECT_EQ(warm.cached, static_cast<int>(scenario_list.size()));
  EXPECT_EQ(runs_table(warm).to_csv(), cold_csv.str());
  for (std::size_t i = 0; i < scenario_list.size(); ++i)
    EXPECT_EQ(json_of(warm.runs[i].outcome), json_of(cold.runs[i].outcome));
}

TEST_F(CampaignRunnerTest, ConcurrencyDoesNotChangeResults) {
  StoreDir dir_serial("hmpt_campaign_serial");
  StoreDir dir_parallel("hmpt_campaign_parallel");
  const auto scenario_list = scenarios();

  CampaignOptions serial;
  serial.output_dir = dir_serial.path();
  serial.scenario_jobs = 1;
  CampaignOptions parallel;
  parallel.output_dir = dir_parallel.path();
  parallel.scenario_jobs = 0;  // all hardware threads

  const auto a = CampaignRunner(serial).run(scenario_list);
  const auto b = CampaignRunner(parallel).run(scenario_list);
  EXPECT_EQ(runs_table(a).to_csv(), runs_table(b).to_csv());
  // The deterministic summary is byte-identical across concurrency; the
  // volatile execution log agrees on counts (but not wall times).
  EXPECT_EQ(summary_json(a).dump(), summary_json(b).dump());
  EXPECT_EQ(status_json(a).at("executed").as_number(),
            status_json(b).at("executed").as_number());
}

TEST_F(CampaignRunnerTest, ErrorPolicyKeepGoingVsFailFast) {
  // "recorded" with a missing file passes matrix validation (the name is
  // registered) but throws when the factory runs — a realistic mid-
  // campaign failure.
  Scenario bad;
  bad.workload = parse_workload_spec("recorded:path=/nonexistent.profile");
  bad.platform = "xeon-max";
  bad.strategy = "estimator";
  bad.repetitions = 1;
  Scenario good;
  good.workload = parse_workload_spec("mg");
  good.platform = "xeon-max";
  good.strategy = "estimator";
  good.repetitions = 1;

  StoreDir dir("hmpt_campaign_errors");
  CampaignOptions options;
  options.output_dir = dir.path();
  options.keep_going = true;
  const auto result = CampaignRunner(options).run({bad, good});
  EXPECT_EQ(result.failed, 1);
  EXPECT_EQ(result.executed, 1);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.runs[0].status, ScenarioRun::Status::Failed);
  EXPECT_FALSE(result.runs[0].error.empty());
  EXPECT_EQ(result.runs[1].status, ScenarioRun::Status::Executed);
  // The failure is recorded in summary.json for post-mortems.
  const auto summary = summary_json(result);
  EXPECT_EQ(summary.at("failed").as_number(), 1.0);

  options.keep_going = false;
  EXPECT_THROW(CampaignRunner(options).run({bad, good}), Error);
}

TEST_F(CampaignRunnerTest, PackedStoreReproducesDirArtifactsAndResumes) {
  StoreDir dir_plain("hmpt_campaign_dirfmt");
  StoreDir dir_packed("hmpt_campaign_packedfmt");
  const auto scenario_list = scenarios();

  CampaignOptions plain;
  plain.output_dir = dir_plain.path();
  plain.scenario_jobs = 4;
  CampaignOptions packed = plain;
  packed.output_dir = dir_packed.path();
  packed.store_format = StoreFormat::Packed;

  // Same campaign, either store layout: the deterministic artefacts are
  // byte-identical — the format is an implementation detail of the store.
  const auto a = CampaignRunner(plain).run(scenario_list);
  const auto b = CampaignRunner(packed).run(scenario_list);
  EXPECT_EQ(runs_table(a).to_csv(), runs_table(b).to_csv());
  EXPECT_EQ(summary_json(a).dump(), summary_json(b).dump());
  EXPECT_TRUE(fs::exists(fs::path(dir_packed.path()) / "outcomes.log"));
  EXPECT_FALSE(fs::exists(fs::path(dir_packed.path()) / "outcomes"));

  // Resume against the packed store: zero executions, all served from
  // the log.
  packed.resume = true;
  const auto warm = CampaignRunner(packed).run(scenario_list);
  EXPECT_EQ(warm.executed, 0);
  EXPECT_EQ(warm.cached, static_cast<int>(scenario_list.size()));
  EXPECT_EQ(runs_table(warm).to_csv(), runs_table(a).to_csv());
}

// ------------------------------------------------------------------ report

TEST_F(CampaignRunnerTest, HtmlReportIsSelfContainedAndStoreDerivable) {
  StoreDir dir("hmpt_campaign_report");
  CampaignOptions options;
  options.output_dir = dir.path();
  options.store_format = StoreFormat::Packed;
  options.scenario_jobs = 4;
  const auto scenario_list = scenarios();
  const auto result = CampaignRunner(options).run(scenario_list);
  ASSERT_TRUE(result.ok());

  const auto html = report::render_report_html(result);
  // One self-contained document: inline SVG charts and inline script,
  // nothing fetched from anywhere.
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("<script>"), std::string::npos);
  EXPECT_EQ(html.find("src=\"http"), std::string::npos);
  EXPECT_EQ(html.find("href=\"http"), std::string::npos);
  EXPECT_EQ(html.find("@import"), std::string::npos);

  // The campaign fingerprint headline and one drill-down per run.
  std::vector<std::string> fingerprints;
  for (const auto& run : result.runs)
    fingerprints.push_back(run.scenario.fingerprint());
  EXPECT_NE(html.find(campaign_fingerprint(fingerprints)),
            std::string::npos);
  for (const auto& run : result.runs)
    EXPECT_NE(html.find("id=\"fp-" + run.scenario.fingerprint() + "\""),
              std::string::npos);

  // Rendering is deterministic, and write_report publishes exactly those
  // bytes at <out>/report/index.html.
  EXPECT_EQ(report::render_report_html(result), html);
  const auto path = report::write_report(result, dir.path());
  EXPECT_EQ(path,
            (fs::path(dir.path()) / "report" / "index.html").string());
  std::ifstream is(path, std::ios::binary);
  std::ostringstream written;
  written << is.rdbuf();
  EXPECT_EQ(written.str(), html);

  // The store alone reconstructs the same ranked view: every record
  // carries its scenario, so a report needs no campaign file.
  const auto from_store = report::load_store_result(dir.path());
  ASSERT_EQ(from_store.runs.size(), scenario_list.size());
  const auto ranked_a = ranked_runs(result);
  const auto ranked_b = ranked_runs(from_store);
  ASSERT_EQ(ranked_a.size(), ranked_b.size());
  for (std::size_t i = 0; i < ranked_a.size(); ++i) {
    EXPECT_EQ(ranked_a[i]->scenario.fingerprint(),
              ranked_b[i]->scenario.fingerprint());
    EXPECT_EQ(json_of(ranked_a[i]->outcome), json_of(ranked_b[i]->outcome));
  }

  // No store, no report.
  StoreDir empty("hmpt_report_empty");
  EXPECT_THROW(report::load_store_result(empty.path()), Error);
}

}  // namespace
}  // namespace hmpt::campaign
