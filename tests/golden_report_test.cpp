// Golden-file regression tests for the hmpt_analyze text reports on the
// paper workloads: the full report bytes — tables, charts, recommendation
// lines — are compared against checked-in expectations in tests/data/.
// The two-tier goldens were captured from the pre-refactor mask-based
// tuner, so they double as the byte-level two-tier-equivalence guarantee
// of the k-tier generalisation; the spr-cxl golden locks down the
// three-tier report.
//
// Regenerating the goldens after an intentional report change:
//
//   HMPT_UPDATE_GOLDEN=1 ctest -R golden_report_test
//   git diff tests/data/   # review every byte before committing
//
// The update path rewrites tests/data/*.golden.txt with the current
// binary's output (and the test passes); without the variable any
// difference is a failure.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "simmem/simulator.h"
#include "workloads/app_models.h"
#include "workloads/trace_io.h"

namespace {

#ifndef HMPT_ANALYZE_PATH
#define HMPT_ANALYZE_PATH ""
#endif
#ifndef HMPT_TEST_DATA_DIR
#define HMPT_TEST_DATA_DIR ""
#endif

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class GoldenReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A per-process scratch directory: concurrent ctest runs (build/ and
    // build-asan/, parallel CI jobs) must not race on shared file names.
    char tmpl[] = "/tmp/hmpt_golden_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    // Profiles are regenerated from the analytic app models on every run:
    // the text format is deterministic, so the golden inputs need no
    // checked-in fixtures.
    auto simulator = hmpt::sim::MachineSimulator::paper_platform();
    hmpt::workloads::save_workload(
        dir_ + "/mg.profile",
        *hmpt::workloads::make_mg_model(simulator).workload);
    hmpt::workloads::save_workload(
        dir_ + "/kwave.profile",
        *hmpt::workloads::make_kwave_model(simulator).workload);
    hmpt::workloads::save_workload(
        dir_ + "/bt.profile",
        *hmpt::workloads::make_bt_model(simulator).workload);
  }
  void TearDown() override {
    for (const char* f : {"mg.profile", "kwave.profile", "bt.profile",
                          "report.out"})
      std::remove((dir_ + "/" + f).c_str());
    rmdir(dir_.c_str());
  }

  /// Runs hmpt_analyze from inside dir_ (so the report's profile line is
  /// the bare file name, machine-independent) and compares the full
  /// stdout+stderr bytes with tests/data/<golden>.
  void expect_golden(const std::string& args, const std::string& golden) {
    const std::string out_path = dir_ + "/report.out";
    const std::string cmd = "cd " + dir_ + " && " +
                            std::string(HMPT_ANALYZE_PATH) + " " + args +
                            " > report.out 2>&1";
    ASSERT_EQ(std::system(cmd.c_str()), 0) << slurp(out_path);
    const std::string actual = slurp(out_path);
    const std::string golden_path =
        std::string(HMPT_TEST_DATA_DIR) + "/" + golden;

    if (std::getenv("HMPT_UPDATE_GOLDEN") != nullptr) {
      std::ofstream os(golden_path, std::ios::binary);
      ASSERT_TRUE(os.good()) << "cannot write " << golden_path;
      os << actual;
      return;
    }
    const std::string expected = slurp(golden_path);
    ASSERT_FALSE(expected.empty())
        << "missing golden " << golden_path
        << " (regenerate with HMPT_UPDATE_GOLDEN=1)";
    EXPECT_EQ(actual, expected)
        << "report bytes diverged from " << golden
        << "; if the change is intentional, regenerate with "
           "HMPT_UPDATE_GOLDEN=1 and review the diff";
  }

  std::string dir_;
};

// Two-tier goldens: captured from the pre-refactor mask-based tuner, byte
// for byte — the k-tier engine must keep reproducing them forever.
TEST_F(GoldenReportTest, MgExhaustiveReport) {
  expect_golden("mg.profile --jobs 1", "mg_exhaustive.golden.txt");
}

TEST_F(GoldenReportTest, MgOnlineReport) {
  expect_golden("mg.profile --strategy online --jobs 1",
                "mg_online.golden.txt");
}

TEST_F(GoldenReportTest, MgEstimatorReportWithCsv) {
  expect_golden("mg.profile --strategy estimator --jobs 1 --csv",
                "mg_estimator.golden.txt");
}

TEST_F(GoldenReportTest, BtBudgetedReport) {
  expect_golden("bt.profile --budget-gb 40 --jobs 1",
                "bt_budget.golden.txt");
}

TEST_F(GoldenReportTest, KwaveExhaustiveReportWithCsv) {
  expect_golden("kwave.profile --jobs 1 --csv",
                "kwave_exhaustive.golden.txt");
}

// Three-tier golden: the HBM/DDR/CXL platform sweeps 3^n configurations
// and prints tier-annotated labels.
TEST_F(GoldenReportTest, MgThreeTierReport) {
  expect_golden("mg.profile --platform spr-cxl --jobs 1",
                "mg_cxl_exhaustive.golden.txt");
}

// The report is byte-identical at any job count — the golden captured at
// --jobs 1 must also match a parallel run.
TEST_F(GoldenReportTest, JobsDoNotChangeReportBytes) {
  const std::string out_path = dir_ + "/report.out";
  const std::string cmd = "cd " + dir_ + " && " +
                          std::string(HMPT_ANALYZE_PATH) +
                          " mg.profile --jobs 4 > report.out 2>&1";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << slurp(out_path);
  EXPECT_EQ(slurp(out_path),
            slurp(std::string(HMPT_TEST_DATA_DIR) +
                  "/mg_exhaustive.golden.txt"));
}

}  // namespace
