// Tests for hmpt::tuner — grouping, config space, experiment runner,
// linear estimator, summary analysis, capacity planner, reports.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.h"
#include "common/units.h"
#include "core/grouping.h"
#include "core/planner.h"
#include "core/report.h"
#include "core/summary.h"
#include "workloads/app_models.h"

namespace hmpt::tuner {
namespace {

using topo::PoolKind;

// ---------------------------------------------------------------- grouping
shim::SiteUsage usage(int site, const std::string& label, std::size_t peak) {
  shim::SiteUsage u;
  u.site = site;
  u.label = label;
  u.peak_live_bytes = peak;
  u.live_bytes = peak;
  u.num_allocations = 1;
  return u;
}

TEST(GroupingTest, TopKPlusRestByDensity) {
  std::vector<shim::SiteUsage> sites = {
      usage(0, "cold_big", 1u << 30), usage(1, "hot", 1u << 28),
      usage(2, "warm", 1u << 28), usage(3, "tiny", 1u << 10)};
  std::vector<double> densities = {0.05, 0.6, 0.3, 0.05};
  GroupingOptions options;
  options.min_bytes = 1u << 20;  // folds "tiny"
  options.max_groups = 3;       // top-2 + rest
  const auto groups = build_groups(sites, densities, options);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].label, "hot");
  EXPECT_EQ(groups[1].label, "warm");
  EXPECT_EQ(groups[2].label, "rest");
  // Rest folds the filtered tiny site and the overflow cold_big site.
  EXPECT_EQ(groups[2].sites.size(), 2u);
  EXPECT_NEAR(groups[2].access_density, 0.10, 1e-12);
}

TEST(GroupingTest, ByBytesRankingIgnoresDensity) {
  std::vector<shim::SiteUsage> sites = {usage(0, "big", 1u << 30),
                                        usage(1, "small_hot", 1u << 20)};
  std::vector<double> densities = {0.1, 0.9};
  GroupingOptions options;
  options.max_groups = 2;
  options.ranking = GroupRanking::ByBytes;
  const auto groups = build_groups(sites, densities, options);
  EXPECT_EQ(groups[0].label, "big");
}

TEST(GroupingTest, NoRestGroupWhenEverythingIsSignificant) {
  std::vector<shim::SiteUsage> sites = {usage(0, "a", 1u << 25),
                                        usage(1, "b", 1u << 25)};
  std::vector<double> densities = {0.5, 0.5};
  GroupingOptions options;
  options.max_groups = 8;
  const auto groups = build_groups(sites, densities, options);
  EXPECT_EQ(groups.size(), 2u);
}

TEST(GroupingTest, LabelSetsFoldVectorFields) {
  // k-Wave style: ux/uy/uz become one group.
  std::vector<shim::SiteUsage> sites = {
      usage(0, "ux", 100), usage(1, "uy", 100), usage(2, "uz", 100),
      usage(3, "p", 50), usage(4, "misc", 10)};
  std::vector<double> densities = {0.2, 0.2, 0.2, 0.3, 0.1};
  const auto groups =
      build_groups_by_labels(sites, densities, {{"ux", "uy", "uz"}, {"p"}});
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].label, "ux+uy+uz");
  EXPECT_EQ(groups[0].sites.size(), 3u);
  EXPECT_DOUBLE_EQ(groups[0].bytes, 300.0);
  EXPECT_NEAR(groups[0].access_density, 0.6, 1e-12);
  EXPECT_EQ(groups[2].label, "rest");
}

// ------------------------------------------------------------- config space
TEST(ConfigSpaceTest, EnumerationAndUsage) {
  ConfigSpace space({100.0, 200.0, 700.0});
  EXPECT_EQ(space.size(), 8u);
  EXPECT_DOUBLE_EQ(space.total_bytes(), 1000.0);
  EXPECT_DOUBLE_EQ(space.hbm_usage(0b101), 0.8);
  EXPECT_DOUBLE_EQ(space.hbm_bytes(0b010), 200.0);
  EXPECT_EQ(space.popcount(0b111), 3);
}

TEST(ConfigSpaceTest, GrayOrderFlipsOneBitAtATime) {
  ConfigSpace space({1.0, 1.0, 1.0, 1.0});
  const auto masks = space.gray_masks();
  ASSERT_EQ(masks.size(), 16u);
  for (std::size_t i = 1; i < masks.size(); ++i) {
    const ConfigMask diff = masks[i] ^ masks[i - 1];
    EXPECT_EQ(diff & (diff - 1), 0u) << i;  // power of two
  }
  // Gray order is a permutation of all masks.
  std::set<ConfigMask> unique(masks.begin(), masks.end());
  EXPECT_EQ(unique.size(), 16u);
}

TEST(ConfigSpaceTest, MasksOfRankSelectsByPopcount) {
  ConfigSpace space({1.0, 1.0, 1.0});
  EXPECT_EQ(space.masks_of_rank(0).size(), 1u);
  EXPECT_EQ(space.masks_of_rank(1).size(), 3u);
  EXPECT_EQ(space.masks_of_rank(2).size(), 3u);
  EXPECT_EQ(space.masks_of_rank(3).size(), 1u);
  EXPECT_THROW(space.masks_of_rank(4), Error);
}

TEST(ConfigSpaceTest, PlacementMapsBitsToHbm) {
  ConfigSpace space({1.0, 1.0, 1.0});
  const auto p = space.placement(0b101);
  EXPECT_EQ(p.of(0), PoolKind::HBM);
  EXPECT_EQ(p.of(1), PoolKind::DDR);
  EXPECT_EQ(p.of(2), PoolKind::HBM);
}

TEST(ConfigSpaceTest, GuardsAgainstExplosion) {
  EXPECT_THROW(ConfigSpace(std::vector<double>(21, 1.0)), Error);
  EXPECT_THROW(ConfigSpace({}), Error);
  EXPECT_THROW(ConfigSpace({0.0}), Error);
}

// -------------------------------------------------------------- experiment
class ExperimentTest : public ::testing::Test {
 protected:
  sim::MachineSimulator sim_ = sim::MachineSimulator::paper_platform();
  workloads::AppInfo app_ = workloads::make_mg_model(sim_);
  ConfigSpace space_{[&] {
    std::vector<double> bytes;
    for (const auto& g : app_.workload->groups()) bytes.push_back(g.bytes);
    return bytes;
  }()};
};

TEST_F(ExperimentTest, BaselineHasSpeedupOne) {
  ExperimentRunner runner(sim_, app_.context, {2, true});
  const auto sweep = runner.sweep(*app_.workload, space_);
  EXPECT_DOUBLE_EQ(sweep.all_ddr().speedup, 1.0);
  EXPECT_GT(sweep.baseline_time, 0.0);
  EXPECT_EQ(sweep.configs.size(), 8u);
}

TEST_F(ExperimentTest, AllHbmBeatsAllDdrForMg) {
  ExperimentRunner runner(sim_, app_.context, {2, true});
  const auto sweep = runner.sweep(*app_.workload, space_);
  EXPECT_GT(sweep.all_hbm().speedup, 2.0);
}

TEST_F(ExperimentTest, HbmUsageAndDensityConsistent) {
  ExperimentRunner runner(sim_, app_.context, {1, false});
  const auto sweep = runner.sweep(*app_.workload, space_);
  for (const auto& cfg : sweep.configs) {
    EXPECT_GE(cfg.hbm_usage, 0.0);
    EXPECT_LE(cfg.hbm_usage, 1.0);
    EXPECT_GE(cfg.hbm_density, 0.0);
    EXPECT_LE(cfg.hbm_density, 1.0);
  }
  EXPECT_DOUBLE_EQ(sweep.of(0).hbm_density, 0.0);
  EXPECT_DOUBLE_EQ(sweep.all_hbm().hbm_density, 1.0);
}

TEST_F(ExperimentTest, ArityMismatchThrows) {
  ConfigSpace wrong({1.0, 2.0});
  ExperimentRunner runner(sim_, app_.context, {1, true});
  EXPECT_THROW(runner.sweep(*app_.workload, wrong), Error);
}

TEST(AccessFractionTest, WeighsBytesByPlacement) {
  sim::PhaseTrace trace;
  sim::KernelPhase phase;
  phase.streams.push_back({0, 30.0, 0.0, sim::AccessPattern::Sequential,
                           true, 0.0});
  phase.streams.push_back({1, 70.0, 0.0, sim::AccessPattern::Sequential,
                           true, 0.0});
  trace.phases.push_back(phase);
  EXPECT_DOUBLE_EQ(
      hbm_access_fraction(trace,
                          sim::Placement({PoolKind::HBM, PoolKind::DDR})),
      0.3);
}

// --------------------------------------------------------------- estimator
TEST(EstimatorTest, LinearCombinationOfSingles) {
  LinearEstimator est(std::vector<double>{1.5, 1.2, 1.0});
  EXPECT_DOUBLE_EQ(est.estimate(0b000), 1.0);
  EXPECT_DOUBLE_EQ(est.estimate(0b001), 1.5);
  EXPECT_DOUBLE_EQ(est.estimate(0b011), 1.7);
  EXPECT_DOUBLE_EQ(est.estimate(0b111), 1.7);
  EXPECT_THROW(est.estimate(0b1000), Error);
  EXPECT_EQ(est.estimate_all().size(), 8u);
}

TEST_F(ExperimentTest, EstimatorNearExactForAdditiveAppWithConvexBias) {
  // BT is built additively in *runtime*; the paper's estimator combines
  // *speedups* linearly, which under-estimates combinations: savings that
  // compose additively in runtime compound super-linearly in speedup
  // (1/(1-x) convexity). The bias is small (BT's savings are small) and
  // one-sided: est <= measured for every configuration.
  const auto bt = workloads::make_bt_model(sim_);
  ConfigSpace space([&] {
    std::vector<double> bytes;
    for (const auto& g : bt.workload->groups()) bytes.push_back(g.bytes);
    return bytes;
  }());
  ExperimentRunner runner(sim_, bt.context, {1, true});
  const auto sweep = runner.sweep(*bt.workload, space);
  const LinearEstimator est(sweep);
  const auto err = estimator_error(sweep, est);
  EXPECT_LT(err.max_abs, 0.05);
  // One-sidedness needs all member savings to point the same way; BT's
  // group 7 is DDR-preferring (negative saving), so restrict to masks
  // composed of HBM-beneficial groups only.
  for (const auto& cfg : sweep.configs) {
    if (cfg.mask & (ConfigMask{1} << 7)) continue;
    EXPECT_LE(est.estimate(cfg.mask), cfg.speedup + 1e-9) << cfg.mask;
  }
}

TEST_F(ExperimentTest, AdditiveAppRuntimesComposeExactly) {
  // In runtime space the additive construction is exact:
  // T({0,1}) = T({0}) + T({1}) - T(DDR).
  const auto bt = workloads::make_bt_model(sim_);
  ConfigSpace space([&] {
    std::vector<double> bytes;
    for (const auto& g : bt.workload->groups()) bytes.push_back(g.bytes);
    return bytes;
  }());
  ExperimentRunner runner(sim_, bt.context, {1, true});
  const auto sweep = runner.sweep(*bt.workload, space);
  const double expected = sweep.of(0b01).mean_time +
                          sweep.of(0b10).mean_time - sweep.baseline_time;
  EXPECT_NEAR(sweep.of(0b11).mean_time, expected,
              sweep.baseline_time * 1e-9);
}

TEST_F(ExperimentTest, SharedPhaseAppViolatesRuntimeAdditivity) {
  // MG's shared V-cycle phase couples u and r through the per-pool max:
  // the runtime of moving both differs from the additive composition.
  ExperimentRunner runner(sim_, app_.context, {1, true});
  const auto sweep = runner.sweep(*app_.workload, space_);
  const double additive = sweep.of(0b001).mean_time +
                          sweep.of(0b010).mean_time - sweep.baseline_time;
  const double measured = sweep.of(0b011).mean_time;
  EXPECT_GT(std::fabs(measured - additive) / measured, 0.05);
}

// ----------------------------------------------------------------- summary
TEST_F(ExperimentTest, SummaryMatchesPaperForMg) {
  ExperimentRunner runner(sim_, app_.context, {2, true});
  const auto sweep = runner.sweep(*app_.workload, space_);
  const auto summary = summarize(sweep);
  EXPECT_NEAR(summary.max_speedup, 2.27, 0.05);
  EXPECT_NEAR(summary.hbm_only_speedup, 2.26, 0.05);
  EXPECT_NEAR(summary.usage90, 0.696, 0.01);
  EXPECT_EQ(summary.usage90_mask, 0b011u);  // groups 0 and 1
  EXPECT_EQ(summary.points.size(), 8u);
}

TEST(SummaryTest, ThresholdFractionGeneralises) {
  SweepResult sweep;
  sweep.num_groups = 1;
  sweep.baseline_time = 1.0;
  ConfigResult base;
  base.mask = 0;
  base.speedup = 1.0;
  base.mean_time = 1.0;
  ConfigResult hbm;
  hbm.mask = 1;
  hbm.speedup = 2.0;
  hbm.mean_time = 0.5;
  hbm.hbm_usage = 1.0;
  hbm.groups_in_hbm = 1;
  sweep.configs = {base, hbm};
  const auto s50 = summarize(sweep, 0.5);
  EXPECT_DOUBLE_EQ(s50.threshold90, 1.5);
  EXPECT_THROW(summarize(sweep, 0.0), Error);
}

// ----------------------------------------------------------------- planner
TEST_F(ExperimentTest, BudgetPlannerRespectsCapacity) {
  ExperimentRunner runner(sim_, app_.context, {1, true});
  const auto sweep = runner.sweep(*app_.workload, space_);
  CapacityPlanner planner(sweep, space_);

  // Unlimited budget: picks the global optimum.
  const auto best = planner.best_under_budget(1e18);
  EXPECT_NEAR(best.speedup, summarize(sweep).max_speedup, 1e-9);

  // Budget for one group (~9 GB): must pick the best single group.
  const auto one = planner.best_under_budget(10.0 * GB);
  EXPECT_LE(one.hbm_bytes, 10.0 * GB);
  EXPECT_EQ(space_.popcount(one.mask), 1);

  // Zero budget: all-DDR.
  const auto none = planner.best_under_budget(0.0);
  EXPECT_EQ(none.mask, 0u);
}

TEST_F(ExperimentTest, CheapestReachingFindsMinimalBytes) {
  ExperimentRunner runner(sim_, app_.context, {1, true});
  const auto sweep = runner.sweep(*app_.workload, space_);
  CapacityPlanner planner(sweep, space_);
  const auto choice = planner.cheapest_reaching(2.0);
  ASSERT_TRUE(choice.has_value());
  EXPECT_GE(choice->speedup, 2.0);
  EXPECT_EQ(choice->mask, 0b011u);
  EXPECT_FALSE(planner.cheapest_reaching(99.0).has_value());
}

TEST_F(ExperimentTest, ParetoFrontIsMonotone) {
  ExperimentRunner runner(sim_, app_.context, {1, true});
  const auto sweep = runner.sweep(*app_.workload, space_);
  CapacityPlanner planner(sweep, space_);
  const auto front = planner.pareto_front();
  ASSERT_GE(front.size(), 2u);
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GE(front[i].hbm_bytes, front[i - 1].hbm_bytes);
    EXPECT_GT(front[i].speedup, front[i - 1].speedup);
  }
  EXPECT_EQ(front.front().mask, 0u);
}

TEST(KnapsackTest, PicksValueDenseGroupsUnderBudget) {
  LinearEstimator est(std::vector<double>{1.5, 1.4, 1.05, 0.95});
  const std::vector<double> bytes = {8.5 * GB, 6.0 * GB, 1.0 * GB,
                                     1.0 * GB};
  // Budget fits groups 1+2 but not group 0 (nor 0+anything).
  const auto choice = knapsack_plan(est, bytes, 8.0 * GB);
  EXPECT_EQ(choice.mask, 0b110u);  // groups 1 and 2
  EXPECT_NEAR(choice.speedup, 1.0 + 0.4 + 0.05, 1e-9);
  EXPECT_LE(choice.hbm_bytes, 8.0 * GB);
  // The DDR-preferring group 3 (speedup < 1) is never chosen.
  const auto rich = knapsack_plan(est, bytes, 1e15);
  EXPECT_EQ(rich.mask & 0b1000u, 0u);
}

TEST(PlannerPlanTest, MaskMaterialisesAsShimPlan) {
  std::vector<AllocationGroup> groups(2);
  groups[0].label = "hot";
  groups[1].label = "cold";
  const auto plan = to_placement_plan(groups, 0b01);
  EXPECT_EQ(plan.kind_for_named("hot"), PoolKind::HBM);
  EXPECT_EQ(plan.kind_for_named("cold"), PoolKind::DDR);
}

TEST(PlannerPlanTest, MultiSiteGroupsPinnedThroughRegistry) {
  shim::CallSiteRegistry sites;
  const int a = sites.intern_named("a");
  const int b = sites.intern_named("b");
  std::vector<AllocationGroup> groups(1);
  groups[0].label = "rest";
  groups[0].sites = {a, b};
  const auto plan = to_placement_plan(groups, 0b1, sites);
  EXPECT_EQ(plan.kind_for(sites.site(a).hash), PoolKind::HBM);
  EXPECT_EQ(plan.kind_for(sites.site(b).hash), PoolKind::HBM);
  EXPECT_EQ(plan.num_pinned_sites(), 2u);
}

// ------------------------------------------------------------------ report
TEST_F(ExperimentTest, DetailedViewListsAllNonBaselineConfigs) {
  ExperimentRunner runner(sim_, app_.context, {1, true});
  const auto sweep = runner.sweep(*app_.workload, space_);
  const auto summary = summarize(sweep);
  const auto view = render_detailed_view(sweep, summary);
  EXPECT_EQ(view.table.num_rows(), 7u);  // 2^3 - 1
  EXPECT_NE(view.bar_chart.find('#'), std::string::npos);
  const auto capped = render_detailed_view(sweep, summary, 1);
  EXPECT_EQ(capped.table.num_rows(), 3u);  // singles only
}

TEST_F(ExperimentTest, SummaryViewRendersReferenceLines) {
  ExperimentRunner runner(sim_, app_.context, {1, true});
  const auto sweep = runner.sweep(*app_.workload, space_);
  const auto summary = summarize(sweep);
  const auto view = render_summary_view(summary, "mg.D");
  EXPECT_EQ(view.table.num_rows(), 8u);
  EXPECT_NE(view.scatter.find("mg.D"), std::string::npos);
  EXPECT_NE(view.scatter.find("90 %"), std::string::npos);
}

TEST(ReportTest, MaskLabelsReadLikeThePaper) {
  EXPECT_EQ(mask_label(0, 3), "[DDR]");
  EXPECT_EQ(mask_label(0b101, 3), "[0 2]");
  EXPECT_EQ(mask_label(0b111, 3), "[0 1 2]");
}

TEST(ReportTest, Table2RowFormatsPercent) {
  SummaryAnalysis s;
  s.max_speedup = 2.27;
  s.hbm_only_speedup = 2.26;
  s.usage90 = 0.696;
  const auto row = table2_row("MG", s);
  ASSERT_EQ(row.size(), 4u);
  EXPECT_EQ(row[1], "2.27");
  EXPECT_EQ(row[3], "69.6");
}

}  // namespace
}  // namespace hmpt::tuner
