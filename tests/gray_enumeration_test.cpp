// Property/fuzz tests of the mixed-radix Gray enumeration that drives the
// exhaustive sweep: for every (num_groups, num_tiers) the sequence must
// cover all k^n configuration ids exactly once, adjacent configurations
// must differ in exactly one group by exactly one tier, and the two-tier
// sequence must be the binary reflected Gray code of the original sweep.
// The CachedTraceTimer assertions pin the payoff: a Gray-order sweep
// re-times only the phases whose group moved.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "core/config_space.h"
#include "simmem/timing_cache.h"
#include "workloads/app_models.h"

namespace hmpt {
namespace {

using tuner::ConfigMask;
using tuner::ConfigSpace;

std::vector<double> unit_bytes(int n) {
  return std::vector<double>(static_cast<std::size_t>(n), 1.0);
}

/// Base-k digits of `id` over `n` groups.
std::vector<int> digits_of(ConfigMask id, int n, int k) {
  std::vector<int> digits(static_cast<std::size_t>(n), 0);
  for (int g = 0; g < n; ++g) {
    digits[static_cast<std::size_t>(g)] =
        static_cast<int>(id % static_cast<ConfigMask>(k));
    id /= static_cast<ConfigMask>(k);
  }
  return digits;
}

TEST(GrayEnumerationTest, CoversEveryConfigurationExactlyOnce) {
  for (int k = 2; k <= topo::kNumPoolKinds; ++k) {
    for (int n = 1; n <= 8; ++n) {
      const ConfigSpace space(unit_bytes(n), k);
      const auto gray = space.gray_masks();
      ASSERT_EQ(gray.size(), space.size()) << "k=" << k << " n=" << n;
      std::set<ConfigMask> seen(gray.begin(), gray.end());
      EXPECT_EQ(seen.size(), space.size()) << "k=" << k << " n=" << n;
      EXPECT_EQ(*seen.begin(), 0u);
      EXPECT_EQ(*seen.rbegin(), static_cast<ConfigMask>(space.size() - 1));
      EXPECT_EQ(gray.front(), 0u) << "enumeration starts at all-DDR";
    }
  }
}

TEST(GrayEnumerationTest, AdjacentConfigsMoveOneGroupByOneTier) {
  for (int k = 2; k <= topo::kNumPoolKinds; ++k) {
    for (int n = 1; n <= 6; ++n) {
      const ConfigSpace space(unit_bytes(n), k);
      const auto gray = space.gray_masks();
      for (std::size_t i = 1; i < gray.size(); ++i) {
        const auto a = digits_of(gray[i - 1], n, k);
        const auto b = digits_of(gray[i], n, k);
        int moved = 0;
        for (int g = 0; g < n; ++g) {
          const auto gi = static_cast<std::size_t>(g);
          if (a[gi] == b[gi]) continue;
          ++moved;
          EXPECT_EQ(std::abs(a[gi] - b[gi]), 1)
              << "k=" << k << " n=" << n << " step " << i << " group " << g;
        }
        EXPECT_EQ(moved, 1) << "k=" << k << " n=" << n << " step " << i;
      }
    }
  }
}

TEST(GrayEnumerationTest, TwoTierSequenceIsTheBinaryReflectedGrayCode) {
  // The original sweep enumerated i ^ (i >> 1); the mixed-radix code must
  // reproduce it exactly so two-tier campaigns measure in the same order.
  for (int n = 1; n <= 10; ++n) {
    const ConfigSpace space(unit_bytes(n), 2);
    const auto gray = space.gray_masks();
    ASSERT_EQ(gray.size(), std::size_t{1} << n);
    for (std::size_t i = 0; i < gray.size(); ++i)
      EXPECT_EQ(gray[i], static_cast<ConfigMask>(i ^ (i >> 1))) << i;
  }
}

TEST(GrayEnumerationTest, FuzzedSpacesKeepBothInvariants) {
  // Randomised (n, k) pairs plus id<->placement round-trips.
  Rng rng(20260726);
  for (int round = 0; round < 50; ++round) {
    const int k =
        2 + static_cast<int>(rng.next_below(topo::kNumPoolKinds - 1));
    const int n = 1 + static_cast<int>(rng.next_below(7));
    std::vector<double> bytes(static_cast<std::size_t>(n), 0.0);
    for (auto& b : bytes) b = 1.0 + rng.next_double() * 1e9;
    const ConfigSpace space(bytes, k);

    const auto gray = space.gray_masks();
    std::set<ConfigMask> seen(gray.begin(), gray.end());
    ASSERT_EQ(seen.size(), space.size()) << "k=" << k << " n=" << n;

    for (int probe = 0; probe < 16; ++probe) {
      const auto id = static_cast<ConfigMask>(
          rng.next_below(static_cast<std::uint64_t>(space.size())));
      const auto placement = space.placement(id);
      EXPECT_EQ(space.config_id(placement), id);
      for (int g = 0; g < n; ++g)
        EXPECT_EQ(space.tier_of(id, g), placement.of(g));
      // popcount counts the groups promoted out of DDR.
      int promoted = 0;
      for (int g = 0; g < n; ++g)
        promoted += placement.of(g) != topo::PoolKind::DDR;
      EXPECT_EQ(space.popcount(id), promoted);
    }
  }
}

TEST(GrayEnumerationTest, RejectsOversizedAndDegenerateSpaces) {
  EXPECT_THROW(ConfigSpace(unit_bytes(ConfigSpace::kMaxGroups + 1), 2),
               Error);
  // 3^13 > 2^20: the config-count guard trips before the group guard.
  EXPECT_THROW(ConfigSpace(unit_bytes(13), 3), Error);
  EXPECT_NO_THROW(ConfigSpace(unit_bytes(12), 3));
  EXPECT_THROW(ConfigSpace(unit_bytes(3), 1), Error);
  EXPECT_THROW(ConfigSpace(unit_bytes(3), topo::kNumPoolKinds + 1), Error);
}

// ------------------------------------------------- CachedTraceTimer payoff
TEST(GrayEnumerationTest, ThreeTierGraySweepMostlyHitsTheTimingCache) {
  auto simulator = sim::MachineSimulator::cxl_tiered_platform();
  const auto app = workloads::make_kwave_model(simulator);
  const auto trace = app.workload->trace();
  tuner::ConfigSpace space(
      [&] {
        std::vector<double> bytes;
        for (const auto& g : app.workload->groups())
          bytes.push_back(g.bytes);
        return bytes;
      }(),
      3);

  sim::CachedTraceTimer timer(simulator.solver(), trace, app.context);
  for (const auto mask : space.gray_masks())
    timer.time(space.placement(mask));

  const std::uint64_t lookups =
      static_cast<std::uint64_t>(space.size()) * trace.phases.size();
  EXPECT_EQ(timer.hits() + timer.misses(), lookups);
  // A phase touching t of the n groups has at most 3^t distinct timings;
  // k-Wave phases touch at most 2 of the 4 groups, so misses are bounded
  // by phases * 3^2 while the sweep visits 3^4 configurations per phase.
  std::uint64_t miss_bound = 0;
  for (const auto& phase : trace.phases) {
    std::set<int> groups;
    for (const auto& s : phase.streams) groups.insert(s.group);
    std::uint64_t distinct = 1;
    for (std::size_t g = 0; g < groups.size(); ++g) distinct *= 3;
    miss_bound += distinct;
  }
  EXPECT_LE(timer.misses(), miss_bound);
  EXPECT_LT(timer.misses(), lookups / 2);
  EXPECT_GT(timer.hits(), 0u);
}

TEST(GrayEnumerationTest, GrayStepsRetimeOnlyTouchedPhases) {
  // Per Gray step, the incremental cost is the phases touching the moved
  // group: warm the cache with one full Gray pass, then a second pass must
  // be all hits (every restricted sub-placement has been seen).
  auto simulator = sim::MachineSimulator::cxl_tiered_platform();
  const auto app = workloads::make_mg_model(simulator);
  const auto trace = app.workload->trace();
  tuner::ConfigSpace space(
      [&] {
        std::vector<double> bytes;
        for (const auto& g : app.workload->groups())
          bytes.push_back(g.bytes);
        return bytes;
      }(),
      3);

  sim::CachedTraceTimer timer(simulator.solver(), trace, app.context);
  for (const auto mask : space.gray_masks())
    timer.time(space.placement(mask));
  const auto misses_after_first_pass = timer.misses();
  for (const auto mask : space.gray_masks())
    timer.time(space.placement(mask));
  EXPECT_EQ(timer.misses(), misses_after_first_pass)
      << "second pass must be served entirely from the cache";
}

}  // namespace
}  // namespace hmpt
