// Tests for the hmptd NDJSON protocol: request round trips through the
// codec, response/event builders as the client parses them, and the
// malformed-input fuzz the daemon's "never crash on bad bytes" promise
// rests on. The LineReader's oversized-line resync is covered over a real
// socketpair.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "campaign/workload_registry.h"
#include "common/error.h"
#include "service/protocol.h"
#include "service/socket.h"

namespace hmpt::service {
namespace {

campaign::Scenario test_scenario() {
  campaign::Scenario s;
  s.workload = campaign::parse_workload_spec("stream:array_gb=2");
  s.platform = "xeon-max";
  s.strategy = "estimator";
  s.repetitions = 2;
  return s;
}

// ------------------------------------------------------------ round trips

TEST(ProtocolTest, SubmitScenarioRoundTrips) {
  Request request;
  request.op = Op::Submit;
  request.scenario = test_scenario();
  request.priority = 7;

  const auto parsed = parse_request(request.to_line());
  EXPECT_EQ(parsed.op, Op::Submit);
  ASSERT_TRUE(parsed.scenario.has_value());
  EXPECT_EQ(parsed.scenario->fingerprint(),
            test_scenario().fingerprint());
  EXPECT_EQ(parsed.priority, 7);
  EXPECT_TRUE(parsed.campaign_text.empty());
}

TEST(ProtocolTest, SubmitRetryFieldsRoundTrip) {
  // Protocol v2: per-job deadline and attempt budget ride the submit.
  Request request;
  request.op = Op::Submit;
  request.scenario = test_scenario();
  request.deadline_s = 12.5;
  request.attempts = 3;

  const auto parsed = parse_request(request.to_line());
  EXPECT_DOUBLE_EQ(parsed.deadline_s, 12.5);
  EXPECT_EQ(parsed.attempts, 3);

  // Unset fields stay off the wire and parse back to their defaults.
  Request plain;
  plain.op = Op::Submit;
  plain.scenario = test_scenario();
  const auto line = plain.to_line();
  EXPECT_EQ(line.find("deadline_s"), std::string::npos);
  EXPECT_EQ(line.find("attempts"), std::string::npos);
  const auto defaults = parse_request(line);
  EXPECT_LT(defaults.deadline_s, 0.0);
  EXPECT_EQ(defaults.attempts, 0);
}

TEST(ProtocolTest, SubmitCampaignRoundTrips) {
  Request request;
  request.op = Op::Submit;
  request.campaign_text = "workload mg\nstrategy estimator\n";

  const auto parsed = parse_request(request.to_line());
  EXPECT_EQ(parsed.op, Op::Submit);
  EXPECT_FALSE(parsed.scenario.has_value());
  EXPECT_EQ(parsed.campaign_text, request.campaign_text);
}

TEST(ProtocolTest, EveryFingerprintOpRoundTrips) {
  for (const Op op : {Op::Status, Op::Result, Op::Cancel}) {
    Request request;
    request.op = op;
    request.fingerprint = "0123456789abcdef";
    if (op == Op::Result) request.wait = true;

    const auto parsed = parse_request(request.to_line());
    EXPECT_EQ(parsed.op, op);
    EXPECT_EQ(parsed.fingerprint, "0123456789abcdef");
    EXPECT_EQ(parsed.wait, op == Op::Result);
  }
}

TEST(ProtocolTest, BareOpsRoundTrip) {
  for (const Op op :
       {Op::Status, Op::Watch, Op::Stats, Op::Drain, Op::Shutdown,
        Op::Ping}) {
    Request request;
    request.op = op;
    const auto parsed = parse_request(request.to_line());
    EXPECT_EQ(parsed.op, op);
    EXPECT_TRUE(parsed.fingerprint.empty());
  }
}

TEST(ProtocolTest, OpSpellingsRoundTrip) {
  for (const Op op :
       {Op::Submit, Op::Status, Op::Result, Op::Watch, Op::Stats,
        Op::Cancel, Op::Drain, Op::Shutdown, Op::Ping}) {
    const auto back = parse_op(to_string(op));
    ASSERT_TRUE(back.has_value()) << to_string(op);
    EXPECT_EQ(*back, op);
  }
  EXPECT_EQ(parse_op("frobnicate"), std::nullopt);
}

// --------------------------------------------------- responses and events

TEST(ProtocolTest, OkLineParsesAsSuccessfulResponse) {
  JsonObject fields;
  fields["queued"] = Json(3);
  const auto message = parse_server_message(ok_line(Op::Status, fields));
  EXPECT_FALSE(message.is_event);
  EXPECT_TRUE(message.ok);
  EXPECT_EQ(message.op, "status");
  EXPECT_DOUBLE_EQ(message.body.at("queued").as_number(), 3.0);
}

TEST(ProtocolTest, ErrorLineCarriesMessageAndFields) {
  JsonObject fields;
  fields["state"] = Json("running");
  const auto message =
      parse_server_message(error_line("pending: abc", "result", fields));
  EXPECT_FALSE(message.is_event);
  EXPECT_FALSE(message.ok);
  EXPECT_EQ(message.op, "result");
  EXPECT_EQ(message.error, "pending: abc");
  EXPECT_EQ(message.body.at("state").as_string(), "running");
}

TEST(ProtocolTest, ErrorLineForUnparsedRequestUsesPlaceholderOp) {
  const auto message = parse_server_message(error_line("invalid JSON"));
  EXPECT_FALSE(message.ok);
  EXPECT_EQ(message.op, "?");
}

TEST(ProtocolTest, JobEventRoundTrips) {
  JsonObject extra;
  extra["speedup"] = Json(2.5);
  const auto message = parse_server_message(
      job_event_line("deadbeefdeadbeef", "mg/xeon-max/exhaustive", "done",
                     1.25, extra));
  EXPECT_TRUE(message.is_event);
  EXPECT_EQ(message.event, "job");
  EXPECT_EQ(message.body.at("fingerprint").as_string(),
            "deadbeefdeadbeef");
  EXPECT_EQ(message.body.at("state").as_string(), "done");
  EXPECT_DOUBLE_EQ(message.body.at("seconds").as_number(), 1.25);
  EXPECT_DOUBLE_EQ(message.body.at("speedup").as_number(), 2.5);
}

TEST(ProtocolTest, LifecycleEventRoundTrips) {
  const auto message = parse_server_message(event_line("drained"));
  EXPECT_TRUE(message.is_event);
  EXPECT_EQ(message.event, "drained");
}

TEST(ProtocolTest, EveryLineIsSingleLineTerminated) {
  Request request;
  request.op = Op::Submit;
  request.scenario = test_scenario();
  for (const std::string& line :
       {request.to_line(), ok_line(Op::Ping), error_line("boom", "submit"),
        job_event_line("ab", "l", "done", 0.1), event_line("shutdown")}) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.back(), '\n');
    EXPECT_EQ(line.find('\n'), line.size() - 1) << line;
  }
}

// ------------------------------------------------------- malformed input

TEST(ProtocolFuzzTest, MalformedRequestsThrowStructuredErrors) {
  const std::vector<std::string> bad = {
      "",                                     // empty line
      "{\"op\":\"submit\"",                   // truncated JSON
      "not json at all",                      // garbage
      "42",                                   // not an object
      "[]",                                   // not an object
      "{}",                                   // missing op
      "{\"op\":7}",                           // op of the wrong kind
      "{\"op\":\"frobnicate\"}",              // unknown op
      "{\"op\":\"submit\"}",                  // submit without payload
      "{\"op\":\"submit\",\"scenario\":{},\"campaign\":\"x\"}",  // both
      "{\"op\":\"submit\",\"scenario\":[]}",  // scenario wrong kind
      "{\"op\":\"submit\",\"campaign\":12}",  // campaign wrong kind
      "{\"op\":\"submit\",\"scenario\":{\"workload\":\"mg\"},"
      "\"priority\":\"high\"}",               // priority wrong kind
      "{\"op\":\"result\"}",                  // result without fingerprint
      "{\"op\":\"cancel\"}",                  // cancel without fingerprint
      "{\"op\":\"result\",\"fingerprint\":7}",   // fingerprint wrong kind
      "{\"op\":\"result\",\"fingerprint\":\"ab\",\"wait\":\"yes\"}",
      "{\"op\":\"submit\",\"scenario\":{\"workload\":\"mg\"},"
      "\"deadline_s\":0}",                    // deadline must be > 0
      "{\"op\":\"submit\",\"scenario\":{\"workload\":\"mg\"},"
      "\"deadline_s\":\"soon\"}",             // deadline wrong kind
      "{\"op\":\"submit\",\"scenario\":{\"workload\":\"mg\"},"
      "\"attempts\":0}",                      // attempts must be >= 1
      "{\"op\":\"submit\",\"scenario\":{\"workload\":\"mg\"},"
      "\"attempts\":\"many\"}",               // attempts wrong kind
  };
  for (const auto& line : bad)
    EXPECT_THROW(parse_request(line), Error) << line;
}

TEST(ProtocolFuzzTest, MalformedServerLinesThrow) {
  for (const std::string& line :
       {std::string("{"), std::string("null"),
        std::string("{\"neither\":true}")})
    EXPECT_THROW(parse_server_message(line), Error) << line;
}

// ------------------------------------------------------------ line reader

/// A connected socketpair with RAII cleanup for LineReader tests.
struct SocketPair {
  SocketPair() {
    int fds[2];
    HMPT_REQUIRE(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0,
                 "socketpair failed");
    a = Socket(fds[0]);
    b = Socket(fds[1]);
  }
  Socket a, b;
};

TEST(LineReaderTest, SplitsLinesAcrossArbitraryWrites) {
  SocketPair pair;
  ASSERT_TRUE(pair.a.send_all("first li"));
  ASSERT_TRUE(pair.a.send_all("ne\nsecond line\npartial"));
  pair.a.close();  // EOF after an unterminated tail

  LineReader reader(pair.b.fd());
  std::string line;
  ASSERT_EQ(reader.next(line), LineReader::Status::Line);
  EXPECT_EQ(line, "first line");
  ASSERT_EQ(reader.next(line), LineReader::Status::Line);
  EXPECT_EQ(line, "second line");
  ASSERT_EQ(reader.next(line), LineReader::Status::Line);
  EXPECT_EQ(line, "partial");
  EXPECT_EQ(reader.next(line), LineReader::Status::Eof);
}

TEST(LineReaderTest, OversizedLineIsDiscardedAndStreamResyncs) {
  SocketPair pair;
  const std::string huge(256, 'x');
  ASSERT_TRUE(pair.a.send_all(huge + "\n{\"op\":\"ping\"}\n"));
  pair.a.close();

  LineReader reader(pair.b.fd(), /*max_line=*/64);
  std::string line;
  ASSERT_EQ(reader.next(line), LineReader::Status::Oversized);
  // The stream stays usable: the next well-formed line parses.
  ASSERT_EQ(reader.next(line), LineReader::Status::Line);
  EXPECT_EQ(parse_request(line).op, Op::Ping);
  EXPECT_EQ(reader.next(line), LineReader::Status::Eof);
}

TEST(LineReaderTest, OversizedUnterminatedTailReportsOversized) {
  SocketPair pair;
  ASSERT_TRUE(pair.a.send_all(std::string(128, 'y')));  // no newline
  pair.a.close();

  LineReader reader(pair.b.fd(), /*max_line=*/64);
  std::string line;
  ASSERT_EQ(reader.next(line), LineReader::Status::Oversized);
  EXPECT_EQ(reader.next(line), LineReader::Status::Eof);
}

}  // namespace
}  // namespace hmpt::service
