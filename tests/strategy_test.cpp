// Tests for the pluggable strategy layer: registry lookup, the Session
// facade, parity between Session("exhaustive") and the Driver, and the
// cheaper search strategies (online, estimator-guided).
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "common/units.h"
#include "core/driver.h"
#include "core/session.h"
#include "core/strategy.h"
#include "core/summary.h"
#include "workloads/app_models.h"

namespace hmpt::tuner {
namespace {

class StrategyTest : public ::testing::Test {
 protected:
  sim::MachineSimulator sim_ = sim::MachineSimulator::paper_platform();
  workloads::AppInfo mg_ = workloads::make_mg_model(sim_);
};

// ---------------------------------------------------------------- registry
TEST(StrategyRegistryTest, BuiltinsAreRegistered) {
  const auto names = StrategyRegistry::instance().names();
  for (const char* expected : {"estimator", "exhaustive", "online"})
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  EXPECT_EQ(make_strategy("exhaustive")->name(), "exhaustive");
  EXPECT_EQ(make_strategy("online")->name(), "online");
  EXPECT_EQ(make_strategy("estimator")->name(), "estimator");
}

TEST(StrategyRegistryTest, UnknownNameThrowsAndNamesKnown) {
  EXPECT_THROW(make_strategy("simulated-annealing"), Error);
  try {
    make_strategy("simulated-annealing");
    FAIL() << "expected hmpt::Error";
  } catch (const Error& e) {
    // The error message teaches the caller what is available.
    EXPECT_NE(std::string(e.what()).find("exhaustive"), std::string::npos)
        << e.what();
  }
}

TEST(StrategyRegistryTest, DuplicateAndEmptyRegistrationsRejected) {
  auto& registry = StrategyRegistry::instance();
  EXPECT_THROW(registry.add("exhaustive",
                            [] { return std::make_unique<ExhaustiveStrategy>(); }),
               Error);
  EXPECT_THROW(registry.add("", [] { return std::make_unique<ExhaustiveStrategy>(); }),
               Error);
  EXPECT_THROW(registry.add("null-factory", nullptr), Error);
}

TEST(StrategyRegistryTest, CustomStrategyPlugsIn) {
  class AllDdrStrategy : public TuningStrategy {
   public:
    std::string name() const override { return "test-all-ddr"; }
    TuningOutcome tune(sim::MachineSimulator&, sim::ExecutionContext,
                       const workloads::Workload& workload,
                       const ConfigSpace& space, const TuningBudget&,
                       const TuningCallbacks&) const override {
      TuningOutcome out;
      out.strategy = name();
      out.workload = workload.name();
      out.num_groups = space.num_groups();
      return out;
    }
  };
  auto& registry = StrategyRegistry::instance();
  if (!registry.contains("test-all-ddr"))
    registry.add("test-all-ddr",
                 [] { return std::make_unique<AllDdrStrategy>(); });
  auto sim = sim::MachineSimulator::paper_platform();
  const auto app = workloads::make_mg_model(sim);
  const auto outcome = Session::on(sim)
                           .workload(*app.workload)
                           .strategy("test-all-ddr")
                           .run();
  EXPECT_EQ(outcome.strategy, "test-all-ddr");
  EXPECT_EQ(outcome.chosen_mask, 0u);
}

// ----------------------------------------------------------------- session
TEST_F(StrategyTest, SessionWithoutWorkloadThrows) {
  EXPECT_THROW(Session::on(sim_).run(), Error);
}

TEST_F(StrategyTest, SessionRejectsBadBuilderValues) {
  EXPECT_THROW(Session::on(sim_).repetitions(0), Error);
  EXPECT_THROW(Session::on(sim_).budget_gb(-1.0), Error);
  EXPECT_THROW(Session::on(sim_).top_k(0), Error);
  EXPECT_THROW(Session::on(sim_).workload(workloads::WorkloadPtr{}), Error);
}

TEST_F(StrategyTest, ExhaustiveSessionMatchesDriverAnalysis) {
  // The Session front door and the Driver's report must recommend the same
  // placement on the 3-group MG workload: both run ExhaustiveStrategy.
  const auto outcome = Session::on(sim_)
                           .workload(*mg_.workload)
                           .context(mg_.context)
                           .repetitions(2)
                           .run();
  tuner::DriverOptions options;
  options.experiment.repetitions = 2;
  Driver driver(sim_, mg_.context, options);
  const auto report = driver.analyze(*mg_.workload);

  EXPECT_EQ(outcome.strategy, "exhaustive");
  EXPECT_EQ(outcome.chosen_mask, report.recommended.mask);
  EXPECT_NEAR(outcome.speedup, report.recommended.speedup, 1e-9);
  EXPECT_EQ(outcome.configs_measured, 8);
  EXPECT_EQ(outcome.measurements, 16);
  ASSERT_TRUE(outcome.sweep.has_value());
  EXPECT_EQ(outcome.sweep->configs.size(), 8u);
  // Exhaustive outcomes hold the per-config data once, in the sweep.
  EXPECT_EQ(outcome.configs().size(), 8u);
  EXPECT_TRUE(outcome.table.empty());
  // The driver embeds the same outcome (minus the duplicated sweep).
  EXPECT_EQ(report.outcome.strategy, "exhaustive");
  EXPECT_EQ(report.outcome.chosen_mask, outcome.chosen_mask);
  EXPECT_FALSE(report.outcome.sweep.has_value());
  EXPECT_TRUE(report.outcome.trajectory.empty());
}

TEST_F(StrategyTest, OnlineProgressReportsLiveSpeedups) {
  int ticks = 0;
  double last_best = 0.0;
  int last_distinct = 0;
  const auto outcome = Session::on(sim_)
                           .workload(*mg_.workload)
                           .context(mg_.context)
                           .strategy("online")
                           .progress([&](const TuningProgress& p) {
                             ++ticks;
                             last_best = p.best_speedup;
                             last_distinct = p.configs_measured;
                           })
                           .run();
  // One tick per measured run: the baseline plus every trial.
  EXPECT_EQ(ticks, outcome.measurements);
  // The hook sees real speedups while the search runs, not placeholders.
  EXPECT_NEAR(last_best, outcome.speedup, 1e-9);
  EXPECT_GT(last_best, 1.5);
  EXPECT_EQ(last_distinct, outcome.configs_measured);
}

TEST_F(StrategyTest, ProgressCallbackFiresPerConfiguration) {
  int ticks = 0;
  double last_best = 0.0;
  const auto outcome = Session::on(sim_)
                           .workload(*mg_.workload)
                           .context(mg_.context)
                           .repetitions(1)
                           .progress([&](const TuningProgress& p) {
                             ++ticks;
                             EXPECT_EQ(p.strategy, "exhaustive");
                             EXPECT_EQ(p.configs_measured, ticks);
                             last_best = p.best_speedup;
                           })
                           .run();
  EXPECT_EQ(ticks, outcome.configs_measured);
  EXPECT_NEAR(last_best, outcome.speedup, 1e-9);
}

TEST_F(StrategyTest, BudgetConstrainsTheChosenPlacement) {
  for (const char* strategy : {"exhaustive", "online", "estimator"}) {
    const auto outcome = Session::on(sim_)
                             .workload(*mg_.workload)
                             .context(mg_.context)
                             .repetitions(1)
                             .strategy(strategy)
                             .budget_gb(10.0)
                             .run();
    EXPECT_LE(outcome.hbm_bytes, 10.0 * GB) << strategy;
    EXPECT_GT(outcome.speedup, 1.0) << strategy;
  }
}

// ---------------------------------------------------------- online strategy
TEST_F(StrategyTest, OnlineStrategyAgreesWithExhaustiveOnMg) {
  const auto exhaustive = Session::on(sim_)
                              .workload(*mg_.workload)
                              .context(mg_.context)
                              .repetitions(1)
                              .run();
  const auto online = Session::on(sim_)
                          .workload(*mg_.workload)
                          .context(mg_.context)
                          .strategy("online")
                          .run();
  EXPECT_EQ(online.chosen_mask, exhaustive.chosen_mask);
  EXPECT_NEAR(online.speedup, exhaustive.speedup, 0.01);
  EXPECT_LT(online.configs_measured, exhaustive.configs_measured);
  EXPECT_FALSE(online.sweep.has_value());
  // Trajectory entries carry the tried configuration and its verdict.
  EXPECT_FALSE(online.trajectory.empty());
  int accepted = 0;
  for (const auto& step : online.trajectory) accepted += step.accepted;
  EXPECT_GE(accepted, 1);
}

// ------------------------------------------------------- estimator strategy
TEST_F(StrategyTest, EstimatorGuidedMeasuresFewerWithinFivePercent) {
  const auto exhaustive = Session::on(sim_)
                              .workload(*mg_.workload)
                              .context(mg_.context)
                              .repetitions(1)
                              .run();
  const auto guided = Session::on(sim_)
                          .workload(*mg_.workload)
                          .context(mg_.context)
                          .strategy("estimator")
                          .repetitions(1)
                          .run();
  // O(n + k): strictly fewer simulator measurements than the 2^n sweep...
  EXPECT_LT(guided.configs_measured, exhaustive.configs_measured);
  EXPECT_LT(guided.measurements, exhaustive.measurements);
  // ...while staying within 5 % of the exhaustive best speedup.
  EXPECT_GE(guided.speedup, 0.95 * exhaustive.speedup);
}

TEST_F(StrategyTest, EstimatorGuidedScalesLinearlyOnWiderSpaces) {
  // On an 8-group workload the sweep needs 256 configurations; the guided
  // strategy needs 1 + 8 + k.
  const auto bt = workloads::make_bt_model(sim_);
  const auto guided = Session::on(sim_)
                          .workload(*bt.workload)
                          .context(bt.context)
                          .strategy("estimator")
                          .repetitions(1)
                          .top_k(5)
                          .run();
  EXPECT_EQ(guided.configs_measured, 1 + 8 + 5);
  const auto exhaustive = Session::on(sim_)
                              .workload(*bt.workload)
                              .context(bt.context)
                              .repetitions(1)
                              .run();
  EXPECT_EQ(exhaustive.configs_measured, 256);
  EXPECT_GE(guided.speedup, 0.95 * exhaustive.speedup);
}

// ----------------------------------------------------------------- outcome
TEST_F(StrategyTest, OutcomeRendersUnifiedReport) {
  const auto outcome = Session::on(sim_)
                           .workload(*mg_.workload)
                           .context(mg_.context)
                           .strategy("estimator")
                           .repetitions(1)
                           .run();
  const std::string text = outcome.to_text();
  EXPECT_NE(text.find("strategy estimator"), std::string::npos) << text;
  EXPECT_NE(text.find("recommended placement"), std::string::npos);
  EXPECT_NE(text.find("trajectory"), std::string::npos);
  EXPECT_NE(text.find("measured configurations"), std::string::npos);
}

// ------------------------------------------------- hardened sweep accessor
TEST_F(StrategyTest, SweepOfUnknownMaskThrows) {
  ExperimentRunner runner(sim_, mg_.context, {1, true});
  ConfigSpace space([&] {
    std::vector<double> bytes;
    for (const auto& g : mg_.workload->groups()) bytes.push_back(g.bytes);
    return bytes;
  }());
  const auto sweep = runner.sweep(*mg_.workload, space);
  EXPECT_THROW(sweep.of(0b1000), Error);   // beyond the 3-group space
  EXPECT_THROW(sweep.of(12345), Error);
  EXPECT_EQ(sweep.of(0b011).mask, 0b011u);
}

TEST(SweepAccessTest, SparseTableFallsBackToScan) {
  SweepResult sweep;
  sweep.num_groups = 3;
  ConfigResult r;
  r.mask = 0b101;
  r.speedup = 1.5;
  sweep.configs = {r};  // not mask-indexed: configs[0].mask != 0
  EXPECT_DOUBLE_EQ(sweep.of(0b101).speedup, 1.5);
  EXPECT_THROW(sweep.of(0b001), Error);
  EXPECT_THROW(sweep.of(0), Error);
}

TEST(EstimatorGuardTest, RejectsOversizedGroupCounts) {
  EXPECT_THROW(LinearEstimator(std::vector<double>(
                   ConfigSpace::kMaxGroups + 1, 1.0)),
               Error);
  LinearEstimator ok(std::vector<double>(ConfigSpace::kMaxGroups, 1.0));
  EXPECT_EQ(ok.num_groups(), ConfigSpace::kMaxGroups);
  EXPECT_THROW(ok.single_speedup(-1), Error);
  EXPECT_THROW(ok.single_speedup(ConfigSpace::kMaxGroups), Error);
}

}  // namespace
}  // namespace hmpt::tuner
