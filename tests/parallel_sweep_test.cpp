// Tests for the parallel, incrementally-memoized sweep engine: the
// ThreadPool primitive, the counter-based noise streams, the per-phase
// timing cache, and the headline guarantee — serial, parallel, memoized
// and unmemoized campaigns produce bit-identical results for every
// strategy, with and without measurement noise.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/session.h"
#include "core/strategy.h"
#include "simmem/timing_cache.h"
#include "workloads/app_models.h"

namespace hmpt {
namespace {

// -------------------------------------------------------------- ThreadPool
TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  constexpr std::size_t kN = 1000;
  std::vector<int> hits(kN, 0);  // disjoint writes, one per index
  std::atomic<int> total{0};
  pool.parallel_for(kN, [&](std::size_t i) {
    ++hits[i];
    total.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), static_cast<int>(kN));
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));

  // The pool is reusable across regions.
  total = 0;
  pool.parallel_for(17, [&](std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 17);
}

TEST(ThreadPoolTest, ChunksAreContiguousAndCoverTheRange) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 100;
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_chunks(kN, [&](std::size_t begin, std::size_t end) {
    std::lock_guard<std::mutex> lock(mutex);
    chunks.emplace_back(begin, end);
  });
  ASSERT_LE(chunks.size(), 3u);
  std::sort(chunks.begin(), chunks.end());
  std::size_t covered = 0;
  for (const auto& [begin, end] : chunks) {
    EXPECT_EQ(begin, covered);  // contiguous, no gaps or overlaps
    EXPECT_LT(begin, end);
    covered = end;
  }
  EXPECT_EQ(covered, kN);
}

TEST(ThreadPoolTest, TaskExceptionIsRethrownAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 37) raise("task 37 failed");
                                 }),
               Error);
  std::atomic<int> total{0};
  pool.parallel_for(10, [&](std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 10);
}

TEST(ThreadPoolTest, SizeResolutionAndSerialFallback) {
  EXPECT_GE(ThreadPool::hardware_jobs(), 1);
  EXPECT_EQ(ThreadPool(0).size(), ThreadPool::hardware_jobs());
  EXPECT_EQ(ThreadPool(-3).size(), 1);

  // The free helper runs serially in the calling thread for jobs <= 1.
  std::vector<std::size_t> order;
  parallel_for(1, 5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

// ---------------------------------------------------------------- mix_seed
TEST(MixSeedTest, SmallKeyPerturbationsDecorrelate) {
  const std::uint64_t base = mix_seed(42, 0, 0);
  EXPECT_NE(base, mix_seed(42, 1, 0));
  EXPECT_NE(base, mix_seed(42, 0, 1));
  EXPECT_NE(base, mix_seed(43, 0, 0));
  // (stream, counter) does not collide with (counter, stream).
  EXPECT_NE(mix_seed(42, 7, 3), mix_seed(42, 3, 7));
  // Pure function of the triple.
  EXPECT_EQ(base, mix_seed(42, 0, 0));
}

// --------------------------------------------------------- CachedTraceTimer
TEST(CachedTraceTimerTest, MatchesUncachedAcrossPaperWorkloads) {
  auto simulator = sim::MachineSimulator::paper_platform();
  Rng rng(7);
  for (const auto& app : workloads::paper_benchmark_suite(simulator)) {
    const auto trace = app.workload->trace();
    const int n = app.workload->num_groups();
    sim::CachedTraceTimer timer(simulator.solver(), trace, app.context);
    for (int i = 0; i < 64; ++i) {
      sim::Placement placement = sim::Placement::uniform(
          n, topo::PoolKind::DDR);
      for (int g = 0; g < n; ++g)
        if (rng.next_double() < 0.5) placement.set(g, topo::PoolKind::HBM);
      const double cached = timer.time(placement);
      const double uncached =
          simulator.solver().time_trace(trace, placement, app.context);
      // Bit-identical, not just close: the cache stores the solver's exact
      // per-phase doubles and sums them in the same order.
      EXPECT_EQ(cached, uncached)
          << app.workload->name() << " placement " << i;
    }
  }
}

TEST(CachedTraceTimerTest, GrayOrderSweepMostlyHitsTheCache) {
  auto simulator = sim::MachineSimulator::paper_platform();
  const auto app = workloads::make_kwave_model(simulator);
  const auto trace = app.workload->trace();
  tuner::ConfigSpace space([&] {
    std::vector<double> bytes;
    for (const auto& g : app.workload->groups()) bytes.push_back(g.bytes);
    return bytes;
  }());

  sim::CachedTraceTimer timer(simulator.solver(), trace, app.context);
  for (const auto mask : space.gray_masks())
    timer.time(space.placement(mask));

  const std::uint64_t lookups =
      static_cast<std::uint64_t>(space.size()) * trace.phases.size();
  EXPECT_EQ(timer.hits() + timer.misses(), lookups);
  // Each k-Wave phase touches at most 2 of the 4 groups, so its timings
  // saturate after at most 4 misses — the 16-config sweep re-times far
  // less than half of its phase visits.
  EXPECT_LT(timer.misses(), lookups / 2);
  EXPECT_GT(timer.hits(), 0u);
}

// --------------------------------------------- engine result invariance
void expect_identical_outcomes(const tuner::TuningOutcome& a,
                               const tuner::TuningOutcome& b,
                               const std::string& label) {
  EXPECT_EQ(a.chosen_mask, b.chosen_mask) << label;
  EXPECT_EQ(a.chosen_time, b.chosen_time) << label;
  EXPECT_EQ(a.baseline_time, b.baseline_time) << label;
  EXPECT_EQ(a.speedup, b.speedup) << label;
  EXPECT_EQ(a.configs_measured, b.configs_measured) << label;
  EXPECT_EQ(a.measurements, b.measurements) << label;
  ASSERT_EQ(a.trajectory.size(), b.trajectory.size()) << label;
  for (std::size_t i = 0; i < a.trajectory.size(); ++i) {
    EXPECT_EQ(a.trajectory[i].mask, b.trajectory[i].mask) << label;
    EXPECT_EQ(a.trajectory[i].observed_time, b.trajectory[i].observed_time)
        << label;
    EXPECT_EQ(a.trajectory[i].accepted, b.trajectory[i].accepted) << label;
  }
  ASSERT_EQ(a.configs().size(), b.configs().size()) << label;
  for (std::size_t i = 0; i < a.configs().size(); ++i) {
    const auto& x = a.configs()[i];
    const auto& y = b.configs()[i];
    EXPECT_EQ(x.mask, y.mask) << label;
    EXPECT_EQ(x.mean_time, y.mean_time) << label;
    EXPECT_EQ(x.stddev_time, y.stddev_time) << label;
    EXPECT_EQ(x.speedup, y.speedup) << label;
    EXPECT_EQ(x.hbm_density, y.hbm_density) << label;
  }
}

TEST(ParallelSweepTest, BitIdenticalAcrossJobsForAllStrategies) {
  // The headline guarantee: any strategy, any job count, with and without
  // measurement noise — same outcome, bit for bit.
  for (const double sigma : {0.0, 0.02}) {
    sim::MachineSimulator simulator(topo::xeon_max_9468_duo_flat_snc4(),
                                    sim::default_spr_hbm_calibration(),
                                    {sigma, 42});
    const auto app = workloads::make_mg_model(simulator);
    for (const char* strategy : {"exhaustive", "online", "estimator"}) {
      const auto run = [&](int jobs) {
        return tuner::Session::on(simulator)
            .workload(*app.workload)
            .context(app.context)
            .strategy(strategy)
            .jobs(jobs)
            .run();
      };
      const auto serial = run(1);
      const auto parallel = run(4);
      const auto hardware = run(0);
      const std::string label =
          std::string(strategy) + " sigma=" + std::to_string(sigma);
      expect_identical_outcomes(serial, parallel, label + " jobs=4");
      expect_identical_outcomes(serial, hardware, label + " jobs=0");
    }
  }
}

TEST(ParallelSweepTest, MemoizationAndJobsLeaveSweepBitIdentical) {
  sim::MachineSimulator simulator(topo::xeon_max_9468_duo_flat_snc4(),
                                  sim::default_spr_hbm_calibration(),
                                  {0.02, 7});
  const auto app = workloads::make_kwave_model(simulator);
  tuner::ConfigSpace space([&] {
    std::vector<double> bytes;
    for (const auto& g : app.workload->groups()) bytes.push_back(g.bytes);
    return bytes;
  }());

  const auto run = [&](int jobs, bool memoize) {
    tuner::ExperimentOptions options;
    options.repetitions = 3;
    options.jobs = jobs;
    options.memoize = memoize;
    tuner::ExperimentRunner runner(simulator, app.context, options);
    return runner.sweep(*app.workload, space);
  };

  const auto reference = run(1, false);
  for (const auto& [jobs, memoize] :
       {std::pair{1, true}, {3, false}, {3, true}, {0, true}}) {
    const auto sweep = run(jobs, memoize);
    ASSERT_EQ(sweep.configs.size(), reference.configs.size());
    EXPECT_EQ(sweep.baseline_time, reference.baseline_time);
    for (std::size_t i = 0; i < reference.configs.size(); ++i) {
      EXPECT_EQ(sweep.configs[i].mean_time, reference.configs[i].mean_time)
          << "jobs=" << jobs << " memoize=" << memoize << " mask=" << i;
      EXPECT_EQ(sweep.configs[i].stddev_time,
                reference.configs[i].stddev_time);
      EXPECT_EQ(sweep.configs[i].speedup, reference.configs[i].speedup);
      EXPECT_EQ(sweep.configs[i].hbm_density,
                reference.configs[i].hbm_density);
    }
  }
}

TEST(ParallelSweepTest, CallbackOrderMatchesSerialEnumeration) {
  auto simulator = sim::MachineSimulator::paper_platform();
  const auto app = workloads::make_mg_model(simulator);
  tuner::ConfigSpace space([&] {
    std::vector<double> bytes;
    for (const auto& g : app.workload->groups()) bytes.push_back(g.bytes);
    return bytes;
  }());

  const auto masks_seen = [&](int jobs) {
    tuner::ExperimentOptions options;
    options.repetitions = 1;
    options.jobs = jobs;
    tuner::ExperimentRunner runner(simulator, app.context, options);
    std::vector<tuner::ConfigMask> seen;
    runner.sweep(*app.workload, space,
                 [&](const tuner::ConfigResult& r) { seen.push_back(r.mask); });
    return seen;
  };
  const auto serial = masks_seen(1);
  EXPECT_EQ(serial.size(), space.size());
  EXPECT_EQ(serial.front(), 0u);  // baseline first
  EXPECT_EQ(masks_seen(4), serial);
}

TEST(ParallelSweepTest, MeasureBatchMatchesSingleMeasurements) {
  sim::MachineSimulator simulator(topo::xeon_max_9468_duo_flat_snc4(),
                                  sim::default_spr_hbm_calibration(),
                                  {0.02, 11});
  const auto app = workloads::make_bt_model(simulator);
  tuner::ConfigSpace space([&] {
    std::vector<double> bytes;
    for (const auto& g : app.workload->groups()) bytes.push_back(g.bytes);
    return bytes;
  }());

  tuner::ExperimentOptions options;
  options.repetitions = 2;
  options.jobs = 4;
  tuner::ExperimentRunner runner(simulator, app.context, options);

  const std::vector<tuner::ConfigMask> masks = {5, 0, 129, 7, 255, 64, 33};
  const double baseline = 40.0;
  const auto batch = runner.measure_batch(*app.workload, space, masks,
                                          baseline);
  ASSERT_EQ(batch.size(), masks.size());
  for (std::size_t i = 0; i < masks.size(); ++i) {
    const auto single =
        runner.measure(*app.workload, space, masks[i], baseline);
    EXPECT_EQ(batch[i].mask, masks[i]);
    EXPECT_EQ(batch[i].mean_time, single.mean_time);
    EXPECT_EQ(batch[i].stddev_time, single.stddev_time);
    EXPECT_EQ(batch[i].speedup, single.speedup);
    EXPECT_EQ(batch[i].hbm_density, single.hbm_density);
  }
}

TEST(ParallelSweepTest, ReusedSimulatorReproducesOutcomes) {
  // Before the counter-based noise streams, a second run on the same
  // simulator consumed a different stretch of one shared RNG and saw
  // different noise. Now the platform is stateless: same inputs, same
  // outcome, every time.
  sim::MachineSimulator simulator(topo::xeon_max_9468_duo_flat_snc4(),
                                  sim::default_spr_hbm_calibration(),
                                  {0.02, 5});
  const auto app = workloads::make_mg_model(simulator);
  for (const char* strategy : {"exhaustive", "online", "estimator"}) {
    const auto run = [&] {
      return tuner::Session::on(simulator)
          .workload(*app.workload)
          .context(app.context)
          .strategy(strategy)
          .run();
    };
    const auto first = run();
    const auto second = run();
    expect_identical_outcomes(first, second,
                              std::string("rerun ") + strategy);
  }
}

TEST(ParallelSweepTest, BadJobOptionsAreRejected) {
  auto simulator = sim::MachineSimulator::paper_platform();
  EXPECT_THROW(tuner::Session::on(simulator).jobs(-1), Error);
  tuner::ExperimentOptions options;
  options.jobs = -2;
  EXPECT_THROW(
      tuner::ExperimentRunner(simulator, simulator.full_machine(), options),
      Error);
}

}  // namespace
}  // namespace hmpt
