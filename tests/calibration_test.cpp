// Calibration tests: the simulated platform + app models must reproduce
// the paper's published numbers — Table II per application, the platform
// analysis values of Sec. I-A, and the figure shapes. These are the
// reproduction's acceptance tests; EXPERIMENTS.md records the same
// comparisons narratively.
#include <gtest/gtest.h>

#include "common/units.h"
#include "core/summary.h"
#include "simmem/simulator.h"
#include "workloads/app_models.h"
#include "workloads/stream.h"

namespace hmpt {
namespace {

using topo::PoolKind;

class CalibrationTest : public ::testing::Test {
 protected:
  sim::MachineSimulator sim_ = sim::MachineSimulator::paper_platform();

  tuner::SummaryAnalysis analyse(const workloads::AppInfo& app) {
    std::vector<double> bytes;
    for (const auto& g : app.workload->groups()) bytes.push_back(g.bytes);
    tuner::ConfigSpace space(bytes);
    tuner::ExperimentRunner runner(sim_, app.context, {1, true});
    const auto sweep = runner.sweep(*app.workload, space);
    return tuner::summarize(sweep);
  }
};

// Table II, checked per application: max speedup and HBM-only speedup
// within 0.05x, 90 %-speedup HBM usage within 3 percentage points.
struct TableTwoParam {
  const char* name;
  workloads::AppInfo (*factory)(const sim::MachineSimulator&);
};

class TableTwoTest : public CalibrationTest,
                     public ::testing::WithParamInterface<TableTwoParam> {};

TEST_P(TableTwoTest, MatchesPaperRow) {
  const auto app = GetParam().factory(sim_);
  const auto summary = analyse(app);
  EXPECT_NEAR(summary.max_speedup, app.paper.max_speedup, 0.05)
      << app.name << " max speedup";
  EXPECT_NEAR(summary.hbm_only_speedup, app.paper.hbm_only_speedup, 0.05)
      << app.name << " HBM-only speedup";
  EXPECT_NEAR(summary.usage90, app.paper.usage90, 0.03)
      << app.name << " 90%-speedup HBM usage";
}

INSTANTIATE_TEST_SUITE_P(
    PaperBenchmarks, TableTwoTest,
    ::testing::Values(TableTwoParam{"mg", workloads::make_mg_model},
                      TableTwoParam{"bt", workloads::make_bt_model},
                      TableTwoParam{"lu", workloads::make_lu_model},
                      TableTwoParam{"sp", workloads::make_sp_model},
                      TableTwoParam{"ua", workloads::make_ua_model},
                      TableTwoParam{"is", workloads::make_is_model},
                      TableTwoParam{"kwave", workloads::make_kwave_model}),
    [](const ::testing::TestParamInfo<TableTwoParam>& info) {
      return info.param.name;
    });

TEST_F(CalibrationTest, HeadlineClaimSixtyToSeventyFivePercent) {
  // Abstract: "only about 60 % to 75 % of the data must be placed in HBM
  // to achieve 90 % of the potential performance" (k-Wave is the stated
  // ~77 % outlier, Sec. IV-B).
  for (const auto& app : workloads::paper_benchmark_suite(sim_)) {
    const auto summary = analyse(app);
    EXPECT_GE(summary.usage90, 0.50) << app.name;
    EXPECT_LE(summary.usage90, 0.80) << app.name;
  }
}

TEST_F(CalibrationTest, SomeAppsPreferKeepingDataInDdr) {
  // Table II: MG/BT/SP/IS have max speedup strictly above HBM-only —
  // i.e. the best placement keeps latency-bound groups in DDR.
  for (auto factory : {workloads::make_sp_model, workloads::make_is_model,
                       workloads::make_bt_model}) {
    const auto app = factory(sim_);
    const auto summary = analyse(app);
    EXPECT_GT(summary.max_speedup, summary.hbm_only_speedup) << app.name;
    EXPECT_LT(summary.max_usage, 1.0) << app.name;
  }
}

TEST_F(CalibrationTest, MgSinglesMatchFig7a) {
  const auto app = workloads::make_mg_model(sim_);
  std::vector<double> bytes;
  for (const auto& g : app.workload->groups()) bytes.push_back(g.bytes);
  tuner::ConfigSpace space(bytes);
  tuner::ExperimentRunner runner(sim_, app.context, {1, true});
  const auto sweep = runner.sweep(*app.workload, space);
  // Fig. 7a: moving either hot allocation alone yields > 1.6x; both
  // together > 2.2x.
  EXPECT_GT(sweep.of(0b001).speedup, 1.6);
  EXPECT_GT(sweep.of(0b010).speedup, 1.55);
  EXPECT_GT(sweep.of(0b011).speedup, 2.2);
  // The rarely-touched rhs array contributes nearly nothing.
  EXPECT_LT(sweep.of(0b100).speedup, 1.05);
}

TEST_F(CalibrationTest, LuSingleAllocationCarriesMostSpeedup) {
  // Sec. IV-A: "most of the speedup ... achieved by moving a single
  // allocation (about 25 % of the memory footprint)".
  const auto app = workloads::make_lu_model(sim_);
  std::vector<double> bytes;
  for (const auto& g : app.workload->groups()) bytes.push_back(g.bytes);
  tuner::ConfigSpace space(bytes);
  tuner::ExperimentRunner runner(sim_, app.context, {1, true});
  const auto sweep = runner.sweep(*app.workload, space);
  const double single = sweep.of(0b0000001).speedup;
  const double full = sweep.all_hbm().speedup;
  EXPECT_GT((single - 1.0) / (full - 1.0), 0.55);
  EXPECT_NEAR(space.hbm_usage(0b0000001), 0.25, 0.01);
}

// ------------------------------------------------- platform analysis checks
TEST_F(CalibrationTest, StreamSocketBandwidthsMatchSecIA) {
  auto single = sim::MachineSimulator::paper_platform_single();
  const auto ctx = single.socket_context(12);
  const auto copy = workloads::make_stream_phase(
      workloads::StreamKernel::Copy, 16.0 * GB);
  const double ddr = single.phase_bandwidth(
      copy, sim::Placement::uniform(3, PoolKind::DDR), ctx);
  const double hbm = single.phase_bandwidth(
      copy, sim::Placement::uniform(3, PoolKind::HBM), ctx);
  EXPECT_NEAR(ddr / GB, 200.0, 10.0);   // "about 200 GB/s"
  EXPECT_NEAR(hbm / GB, 675.0, 50.0);   // "about 700 GB/s"
}

TEST_F(CalibrationTest, HbmToDdrCopyAnomalyIsSixtyFivePercent) {
  auto single = sim::MachineSimulator::paper_platform_single();
  const auto ctx = single.socket_context(12);
  const auto copy = workloads::make_stream_phase(
      workloads::StreamKernel::Copy, 16.0 * GB);
  const double h2d = single.phase_bandwidth(
      copy, sim::Placement({PoolKind::HBM, PoolKind::HBM, PoolKind::DDR}),
      ctx);
  const double d2h = single.phase_bandwidth(
      copy, sim::Placement({PoolKind::DDR, PoolKind::DDR, PoolKind::HBM}),
      ctx);
  EXPECT_NEAR(h2d / d2h, 0.65, 0.03);  // Fig. 5a
}

TEST_F(CalibrationTest, AddWithOneDdrInputMatchesHbmOnly) {
  // Fig. 5b: DDR+HBM->HBM ~ HBM-only, saving a third of HBM capacity.
  auto single = sim::MachineSimulator::paper_platform_single();
  const auto ctx = single.socket_context(12);
  const auto add = workloads::make_stream_phase(
      workloads::StreamKernel::Add, 16.0 * GB);
  const double mixed = single.phase_bandwidth(
      add, sim::Placement({PoolKind::DDR, PoolKind::HBM, PoolKind::HBM}),
      ctx);
  const double hbm_only = single.phase_bandwidth(
      add, sim::Placement::uniform(3, PoolKind::HBM), ctx);
  EXPECT_GT(mixed / hbm_only, 0.9);
}

TEST_F(CalibrationTest, ChaseLatencyPenaltyAroundTwentyPercent) {
  auto single = sim::MachineSimulator::paper_platform_single();
  const double ddr = single.chase_latency(256.0 * MB, PoolKind::DDR);
  const double hbm = single.chase_latency(256.0 * MB, PoolKind::HBM);
  EXPECT_NEAR(hbm / ddr, 1.19, 0.03);
}

TEST_F(CalibrationTest, RandomIndirectSumCrossoverNearFullThreads) {
  // Fig. 4: indirect sum crosses speedup 1.0 only near 12 threads/tile.
  auto single = sim::MachineSimulator::paper_platform_single();
  const auto speedup_at = [&](int tpt) {
    const auto ctx = single.socket_context(tpt);
    return single.random_access_bandwidth(PoolKind::HBM, ctx.threads,
                                          ctx.tiles) /
           single.random_access_bandwidth(PoolKind::DDR, ctx.threads,
                                          ctx.tiles);
  };
  EXPECT_LT(speedup_at(1), 0.9);
  EXPECT_LT(speedup_at(8), 1.0);
  EXPECT_GT(speedup_at(12), 1.0);
  EXPECT_LT(speedup_at(12), 1.1);  // barely crosses, as in the paper
}

TEST_F(CalibrationTest, RooflineAiOrderingMatchesFig8) {
  // Fig. 8: MG and UA sit deepest in the memory-bound region (lowest AI,
  // hence the largest HBM gains); BT has far higher DRAM-side AI than MG.
  const auto ai_of = [&](workloads::AppInfo (*factory)(
                             const sim::MachineSimulator&)) {
    return workloads::arithmetic_intensity(*factory(sim_).workload);
  };
  const double mg = ai_of(workloads::make_mg_model);
  const double ua = ai_of(workloads::make_ua_model);
  const double bt = ai_of(workloads::make_bt_model);
  const double sp = ai_of(workloads::make_sp_model);
  EXPECT_GT(bt, 5.0 * mg);
  EXPECT_GT(sp, mg);
  // MG is below the HBM ridge point (bandwidth-bound even on HBM).
  const auto roofline = sim::spr_hbm_roofline();
  EXPECT_LT(mg, roofline.ridge_point("HBM"));
  EXPECT_GT(ua, 0.01);
}

}  // namespace
}  // namespace hmpt
