// End-to-end tests of the hmpt_analyze command-line tool: write a profile,
// run the binary, check the analysis output and the emitted plan. The
// binary path comes from CMake via HMPT_ANALYZE_PATH.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "simmem/simulator.h"
#include "shim/plan.h"
#include "workloads/app_models.h"
#include "workloads/trace_io.h"

namespace {

#ifndef HMPT_ANALYZE_PATH
#define HMPT_ANALYZE_PATH ""
#endif

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto simulator = hmpt::sim::MachineSimulator::paper_platform();
    const auto app = hmpt::workloads::make_mg_model(simulator);
    hmpt::workloads::save_workload(profile_, *app.workload);
  }
  void TearDown() override {
    std::remove(profile_.c_str());
    std::remove(out_.c_str());
    std::remove(plan_.c_str());
  }

  int run(const std::string& args) {
    const std::string cmd = std::string(HMPT_ANALYZE_PATH) + " " + args +
                            " > " + out_ + " 2>&1";
    return std::system(cmd.c_str());
  }

  const std::string profile_ = "/tmp/hmpt_cli_test.profile";
  const std::string out_ = "/tmp/hmpt_cli_test.out";
  const std::string plan_ = "/tmp/hmpt_cli_test.plan";
};

TEST_F(CliTest, AnalysesAProfile) {
  ASSERT_EQ(run(profile_), 0) << slurp(out_);
  const std::string out = slurp(out_);
  EXPECT_NE(out.find("maximum speedup: 2.27x"), std::string::npos) << out;
  EXPECT_NE(out.find("90 % of max"), std::string::npos);
  EXPECT_NE(out.find("recommended placement"), std::string::npos);
}

TEST_F(CliTest, WritesAUsablePlan) {
  ASSERT_EQ(run(profile_ + " --plan-out " + plan_), 0) << slurp(out_);
  const std::string plan_text = slurp(plan_);
  ASSERT_FALSE(plan_text.empty());
  const auto plan = hmpt::shim::PlacementPlan::parse(plan_text);
  // MG's optimum: the two hot allocations in HBM, the rhs in DDR.
  EXPECT_EQ(plan.kind_for_named("mg::u"), hmpt::topo::PoolKind::HBM);
  EXPECT_EQ(plan.kind_for_named("mg::r"), hmpt::topo::PoolKind::HBM);
  EXPECT_EQ(plan.kind_for_named("mg::v"), hmpt::topo::PoolKind::DDR);
}

TEST_F(CliTest, BudgetOptionConstrainsThePlan) {
  ASSERT_EQ(run(profile_ + " --budget-gb 10"), 0) << slurp(out_);
  const std::string out = slurp(out_);
  // 10 GB fits only one of MG's ~9.2 GB groups; the report prints the
  // bytes actually used by the chosen placement.
  EXPECT_NE(out.find("recommended placement (budget 9.21 GB HBM): [0]"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("[0] at 1.66x"), std::string::npos) << out;
}

TEST_F(CliTest, KnlPlatformSelectable) {
  ASSERT_EQ(run(profile_ + " --platform knl"), 0) << slurp(out_);
  EXPECT_NE(slurp(out_).find("KNL-like"), std::string::npos);
}

TEST_F(CliTest, CsvFlagEmitsCsv) {
  ASSERT_EQ(run(profile_ + " --csv"), 0) << slurp(out_);
  EXPECT_NE(slurp(out_).find("hbm_footprint,speedup,"), std::string::npos);
}

TEST_F(CliTest, BadUsageFailsCleanly) {
  EXPECT_NE(run(""), 0);
  EXPECT_NE(run("--frobnicate"), 0);
  EXPECT_NE(run("/nonexistent/profile.txt"), 0);
  EXPECT_EQ(run("--help"), 0);
}

TEST_F(CliTest, BadFlagValuesFailWithUsage) {
  // Out-of-range numerics exit 1 and print the usage text, instead of
  // silently misconfiguring the run.
  for (const std::string args :
       {"--threshold 0", "--threshold 1.5", "--threshold -0.3",
        "--budget-gb -1", "--reps 0", "--reps -2", "--top-k 0",
        "--threshold abc", "--reps 2.5", "--strategy frobnicate",
        "--jobs -1", "--jobs abc", "--jobs 1.5",
        // Tier flags: --tiers must be 0 or >= 2 and within the platform's
        // tier count; tier budgets must name a searched non-DDR tier.
        "--tiers 1", "--tiers -2", "--tiers abc", "--tiers 3",
        "--tier-budget-gb 64", "--tier-budget-gb 0:16",
        "--tier-budget-gb 9:16", "--tier-budget-gb 1:-4",
        "--tier-budget-gb 2:64", "--platform spr-cxl --tiers 2 "
        "--tier-budget-gb 2:64"}) {
    const int rc = run(profile_ + " " + args);
    EXPECT_NE(rc, 0) << args;
    EXPECT_NE(slurp(out_).find("usage:"), std::string::npos) << args;
  }
  // The boundary values stay valid.
  EXPECT_EQ(run(profile_ + " --threshold 1 --reps 1 --budget-gb 0"), 0)
      << slurp(out_);
  EXPECT_EQ(run(profile_ + " --reps 1 --tiers 2 --tier-budget-gb 1:16"), 0)
      << slurp(out_);
}

TEST_F(CliTest, ThreeTierPlatformSweepsTheLargerSpace) {
  ASSERT_EQ(run(profile_ + " --platform spr-cxl --reps 1"), 0)
      << slurp(out_);
  const std::string out = slurp(out_);
  EXPECT_NE(out.find("CXL expander"), std::string::npos) << out;
  EXPECT_NE(out.find("configurations measured: 27"), std::string::npos)
      << out;
  // Restricting the same platform to two tiers reproduces the 2^n space.
  ASSERT_EQ(run(profile_ + " --platform spr-cxl --tiers 2 --reps 1"), 0)
      << slurp(out_);
  EXPECT_NE(slurp(out_).find("configurations measured: 8"),
            std::string::npos)
      << slurp(out_);
}

TEST_F(CliTest, JobsFlagLeavesTheAnalysisIdentical) {
  // --jobs only changes how the campaign is scheduled; the report — noise
  // included — is byte-identical at any job count (0 = hardware threads).
  ASSERT_EQ(run(profile_ + " --jobs 1"), 0) << slurp(out_);
  const std::string serial = slurp(out_);
  ASSERT_EQ(run(profile_ + " --jobs 4"), 0) << slurp(out_);
  EXPECT_EQ(slurp(out_), serial);
  ASSERT_EQ(run(profile_ + " --jobs 0"), 0) << slurp(out_);
  EXPECT_EQ(slurp(out_), serial);
  ASSERT_EQ(run(profile_ + " --strategy estimator --jobs 4"), 0)
      << slurp(out_);
  EXPECT_NE(slurp(out_).find("recommended placement"), std::string::npos);
}

// Pull "...: [0 1] at 2.27x" out of either report flavour.
std::string recommended_mask(const std::string& out) {
  const auto at = out.find("recommended placement");
  if (at == std::string::npos) return "<missing>";
  const auto open = out.find('[', at);
  const auto close = out.find(']', at);
  if (open == std::string::npos || close == std::string::npos)
    return "<missing>";
  return out.substr(open, close - open + 1);
}

TEST_F(CliTest, AllStrategiesAgreeOnTheRecommendedMask) {
  ASSERT_EQ(run(profile_ + " --strategy exhaustive"), 0) << slurp(out_);
  const std::string exhaustive = recommended_mask(slurp(out_));
  ASSERT_NE(exhaustive, "<missing>") << slurp(out_);

  ASSERT_EQ(run(profile_ + " --strategy online"), 0) << slurp(out_);
  EXPECT_EQ(recommended_mask(slurp(out_)), exhaustive) << slurp(out_);

  ASSERT_EQ(run(profile_ + " --strategy estimator"), 0) << slurp(out_);
  const std::string estimator_out = slurp(out_);
  EXPECT_EQ(recommended_mask(estimator_out), exhaustive) << estimator_out;
  // The estimator-guided search reports measuring less than the full space.
  EXPECT_NE(estimator_out.find("configurations measured: 7 of 8"),
            std::string::npos)
      << estimator_out;
}

TEST_F(CliTest, StrategyPlanMatchesExhaustivePlan) {
  ASSERT_EQ(run(profile_ + " --strategy estimator --plan-out " + plan_), 0)
      << slurp(out_);
  const auto plan = hmpt::shim::PlacementPlan::parse(slurp(plan_));
  EXPECT_EQ(plan.kind_for_named("mg::u"), hmpt::topo::PoolKind::HBM);
  EXPECT_EQ(plan.kind_for_named("mg::r"), hmpt::topo::PoolKind::HBM);
  EXPECT_EQ(plan.kind_for_named("mg::v"), hmpt::topo::PoolKind::DDR);
}

}  // namespace
