// Tests for the driver (one-call analysis), the online tuner, allocation
// migration, the recorded-workload adapter and the preload-shim core.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "common/error.h"
#include "common/units.h"
#include "core/driver.h"
#include "core/online.h"
#include "shim/preload_core.h"
#include "workloads/app_models.h"
#include "workloads/line_solver.h"
#include "workloads/npb_kernels.h"
#include "workloads/recorded.h"

namespace hmpt {
namespace {

using topo::PoolKind;

// ---------------------------------------------------------------- migrate
class MigrationTest : public ::testing::Test {
 protected:
  topo::Machine machine_ = topo::xeon_max_9468_single_flat_snc4();
  pools::PoolAllocator alloc_{machine_};
};

TEST_F(MigrationTest, MovesContentsAndResidency) {
  auto a = alloc_.allocate(4096, PoolKind::DDR);
  std::memset(a.ptr, 0x5a, 4096);
  const auto moved = alloc_.migrate(a.ptr, PoolKind::HBM);
  ASSERT_NE(moved.ptr, nullptr);
  EXPECT_EQ(moved.kind, PoolKind::HBM);
  EXPECT_EQ(alloc_.kind_of(moved.ptr), PoolKind::HBM);
  EXPECT_EQ(alloc_.size_of(moved.ptr), 4096u);
  const auto* bytes = static_cast<const unsigned char*>(moved.ptr);
  for (int i = 0; i < 4096; i += 64) EXPECT_EQ(bytes[i], 0x5a) << i;
  // The old pointer is gone.
  EXPECT_EQ(alloc_.live_allocations(), 1u);
  EXPECT_EQ(alloc_.bytes_in_kind(PoolKind::DDR), 0u);
  alloc_.deallocate(moved.ptr);
}

TEST_F(MigrationTest, MigrateToSameKindStillWorks) {
  auto a = alloc_.allocate(128, PoolKind::HBM);
  const auto moved = alloc_.migrate(a.ptr, PoolKind::HBM);
  EXPECT_EQ(moved.kind, PoolKind::HBM);
  alloc_.deallocate(moved.ptr);
}

TEST_F(MigrationTest, MigrateUnknownPointerThrows) {
  int on_stack = 0;
  EXPECT_THROW(alloc_.migrate(&on_stack, PoolKind::HBM), Error);
  EXPECT_THROW(alloc_.migrate(nullptr, PoolKind::HBM), Error);
}

// ---------------------------------------------------------------- recorded
TEST(RecordedWorkloadTest, RemapFoldsGroups) {
  sim::PhaseTrace trace;
  sim::KernelPhase phase;
  for (int g = 0; g < 3; ++g)
    phase.streams.push_back({g, 10.0 * (g + 1), 0.0,
                             sim::AccessPattern::Sequential, true, 0.0});
  trace.phases.push_back(phase);
  workloads::RecordedWorkload recorded(
      "probe", {{"a", 1.0}, {"b", 2.0}, {"c", 3.0}}, trace);
  // Fold b and c into one group.
  recorded.remap_groups({0, 1, 1}, {{"a", 1.0}, {"bc", 5.0}});
  EXPECT_EQ(recorded.num_groups(), 2);
  EXPECT_DOUBLE_EQ(recorded.trace().total_bytes_of_group(1), 50.0);
  recorded.scale(2.0);
  EXPECT_DOUBLE_EQ(recorded.trace().total_bytes(), 120.0);
}

TEST(RecordedWorkloadTest, InvalidConstructionsThrow) {
  sim::PhaseTrace trace;
  sim::KernelPhase phase;
  phase.streams.push_back({5, 1.0, 0.0, sim::AccessPattern::Sequential,
                           true, 0.0});
  trace.phases.push_back(phase);
  EXPECT_THROW(
      workloads::RecordedWorkload("x", {{"only-one", 1.0}}, trace), Error);
}

// ------------------------------------------------------------------ driver
class DriverTest : public ::testing::Test {
 protected:
  sim::MachineSimulator sim_ = sim::MachineSimulator::paper_platform();
};

TEST_F(DriverTest, AnalyzeMgReproducesSummary) {
  tuner::Driver driver(sim_, sim_.full_machine());
  const auto app = workloads::make_mg_model(sim_);
  const auto report = driver.analyze(*app.workload);
  EXPECT_NEAR(report.summary.max_speedup, 2.27, 0.05);
  EXPECT_NEAR(report.minimal90.hbm_usage, 0.696, 0.01);
  // MG fits entirely into the machine's HBM, so the recommendation is the
  // global optimum.
  EXPECT_EQ(report.recommended.mask, report.summary.max_mask);
  const std::string text = report.to_text();
  EXPECT_NE(text.find("maximum speedup"), std::string::npos);
  EXPECT_NE(text.find("recommended placement"), std::string::npos);
}

TEST_F(DriverTest, BudgetConstrainsRecommendation) {
  tuner::DriverOptions options;
  options.hbm_budget_bytes = 10.0 * GB;  // less than one MG group pair
  tuner::Driver driver(sim_, sim_.full_machine(), options);
  const auto app = workloads::make_mg_model(sim_);
  const auto report = driver.analyze(*app.workload);
  EXPECT_LE(report.recommended.hbm_bytes, 10.0 * GB);
  EXPECT_LT(report.recommended.speedup, report.summary.max_speedup);
}

TEST_F(DriverTest, RecordBuildsWorkloadFromProfilingRun) {
  pools::PoolAllocator pool(sim_.machine());
  shim::ShimAllocator shim(pool);
  sample::IbsSampler sampler({256, sample::SamplingMode::Poisson, 9});
  workloads::MiniMgConfig config;
  config.n = 16;
  const auto profile = workloads::run_mini_mg(shim, config, &sampler);

  tuner::Driver driver(sim_, sim_.full_machine());
  tuner::GroupingOptions grouping;
  grouping.max_groups = 8;
  const auto recorded =
      driver.record(shim, sampler.report(), profile.trace,
                    {"mg::u", "mg::r", "mg::v"}, grouping, "mini-mg");
  EXPECT_EQ(recorded.num_groups(), 3);
  // Analysis of the recorded run goes straight through the driver.
  const auto report = driver.analyze(recorded);
  EXPECT_GT(report.summary.max_speedup, 1.2);
}

TEST_F(DriverTest, PlanMaterialisationMatchesRecommendation) {
  tuner::Driver driver(sim_, sim_.full_machine());
  const auto app = workloads::make_lu_model(sim_);
  const auto report = driver.analyze(*app.workload);
  std::vector<tuner::AllocationGroup> groups;
  for (const auto& g : app.workload->groups()) {
    tuner::AllocationGroup ag;
    ag.label = g.label;
    ag.bytes = g.bytes;
    groups.push_back(ag);
  }
  const auto plan = driver.plan_for(report, groups);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const bool in_hbm =
        report.recommended.mask & (tuner::ConfigMask{1} << g);
    EXPECT_EQ(plan.kind_for_named(groups[g].label) == PoolKind::HBM,
              in_hbm)
        << groups[g].label;
  }
}

// ------------------------------------------------------------ online tuner
class OnlineTest : public ::testing::Test {
 protected:
  sim::MachineSimulator sim_ = sim::MachineSimulator::paper_platform();

  tuner::ConfigSpace space_for(const workloads::AppInfo& app) {
    std::vector<double> bytes;
    for (const auto& g : app.workload->groups()) bytes.push_back(g.bytes);
    return tuner::ConfigSpace(bytes);
  }
};

TEST_F(OnlineTest, ConvergesToNearOptimalForMg) {
  const auto app = workloads::make_mg_model(sim_);
  const auto space = space_for(app);
  tuner::OnlineTuner online(sim_, app.context);
  const auto result = online.tune(*app.workload, space);
  // Exhaustive optimum for comparison.
  tuner::ExperimentRunner runner(sim_, app.context, {1, true});
  const auto sweep = runner.sweep(*app.workload, space);
  const auto summary = tuner::summarize(sweep);
  EXPECT_GT(result.speedup, 0.95 * summary.max_speedup);
  // Far fewer runs than the 2^n sweep would need per-config repetitions.
  EXPECT_LT(result.iterations_used, 40);
}

TEST_F(OnlineTest, AllAppsReachNinetyPercentOfOptimum) {
  for (const auto& app : workloads::paper_benchmark_suite(sim_)) {
    const auto space = space_for(app);
    tuner::OnlineTuner online(sim_, app.context);
    const auto result = online.tune(*app.workload, space);
    tuner::ExperimentRunner runner(sim_, app.context, {1, true});
    const auto sweep = runner.sweep(*app.workload, space);
    const auto summary = tuner::summarize(sweep);
    EXPECT_GE(result.speedup, 1.0 + 0.9 * (summary.max_speedup - 1.0))
        << app.name;
  }
}

TEST_F(OnlineTest, RespectsCapacityBudget) {
  const auto app = workloads::make_mg_model(sim_);
  const auto space = space_for(app);
  tuner::OnlineTunerOptions options;
  options.hbm_budget_bytes = 10.0 * GB;
  tuner::OnlineTuner online(sim_, app.context, options);
  const auto result = online.tune(*app.workload, space);
  EXPECT_LE(space.hbm_bytes(result.final_mask), 10.0 * GB);
  for (const auto& step : result.trajectory)
    EXPECT_LE(space.hbm_bytes(step.mask), 10.0 * GB);
}

TEST_F(OnlineTest, TrajectoryOnlyKeepsImprovements) {
  const auto app = workloads::make_sp_model(sim_);
  const auto space = space_for(app);
  tuner::OnlineTuner online(sim_, app.context);
  const auto result = online.tune(*app.workload, space);
  double best = result.baseline_time;
  for (const auto& step : result.trajectory) {
    if (step.kept) {
      EXPECT_LT(step.observed_time, best);
      best = step.observed_time;
    }
  }
  EXPECT_DOUBLE_EQ(best, result.final_time);
  // SP's chase groups prefer DDR: the tuner must leave them there.
  EXPECT_EQ(result.final_mask & (tuner::ConfigMask{1} << 6), 0u);
  EXPECT_EQ(result.final_mask & (tuner::ConfigMask{1} << 7), 0u);
}

// -------------------------------------------------------------- line solver
class LineSolverTest : public ::testing::Test {
 protected:
  topo::Machine machine_ = topo::xeon_max_9468_single_flat_snc4();
  pools::PoolAllocator pool_{machine_};
  shim::ShimAllocator shim_{pool_};
};

TEST_F(LineSolverTest, TridiagonalSolveIsExact) {
  const std::size_t n = 32;
  std::vector<double> sub(n, -1.0), diag(n, 4.0), super(n, -1.0), rhs(n),
      scratch(n), x_ref(n);
  sub[0] = super[n - 1] = 0.0;
  Rng rng(5);
  for (auto& v : x_ref) v = rng.next_double() - 0.5;
  for (std::size_t i = 0; i < n; ++i) {
    rhs[i] = diag[i] * x_ref[i];
    if (i > 0) rhs[i] += sub[i] * x_ref[i - 1];
    if (i + 1 < n) rhs[i] += super[i] * x_ref[i + 1];
  }
  workloads::solve_tridiagonal(sub.data(), diag.data(), super.data(),
                               rhs.data(), scratch.data(), n);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(rhs[i], x_ref[i], 1e-12) << i;
}

TEST_F(LineSolverTest, PentadiagonalSolveIsExact) {
  const std::size_t n = 24;
  std::vector<double> b2(n, -0.5), b1(n, -1.0), d(n, 6.0), a1(n, -1.0),
      a2(n, -0.5), rhs(n), x_ref(n);
  b2[0] = b2[1] = b1[0] = 0.0;
  a1[n - 1] = a2[n - 1] = a2[n - 2] = 0.0;
  Rng rng(6);
  for (auto& v : x_ref) v = rng.next_double() - 0.5;
  for (std::size_t i = 0; i < n; ++i) {
    rhs[i] = d[i] * x_ref[i];
    if (i > 1) rhs[i] += b2[i] * x_ref[i - 2];
    if (i > 0) rhs[i] += b1[i] * x_ref[i - 1];
    if (i + 1 < n) rhs[i] += a1[i] * x_ref[i + 1];
    if (i + 2 < n) rhs[i] += a2[i] * x_ref[i + 2];
  }
  workloads::solve_pentadiagonal(b2.data(), b1.data(), d.data(), a1.data(),
                                 a2.data(), rhs.data(), n);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(rhs[i], x_ref[i], 1e-10) << i;
}

TEST_F(LineSolverTest, MiniBtStyleRunConverges) {
  workloads::MiniLineSolverConfig config;
  config.n = 8;
  config.system = workloads::LineSystem::Tridiagonal;
  const auto result = workloads::run_mini_line_solver(shim_, config, "bt");
  EXPECT_TRUE(result.converged) << result.max_residual;
  EXPECT_EQ(result.trace.num_groups(), 3);
  // Three allocation sites named bt::{u,rhs,lhs}.
  EXPECT_GE(shim_.sites().find_by_label("bt::lhs"), 0);
}

TEST_F(LineSolverTest, MiniSpStyleRunConverges) {
  workloads::MiniLineSolverConfig config;
  config.n = 8;
  config.system = workloads::LineSystem::Pentadiagonal;
  const auto result = workloads::run_mini_line_solver(shim_, config, "sp");
  EXPECT_TRUE(result.converged) << result.max_residual;
  // The lhs (factored systems) dominates the recorded traffic, as in SP.
  EXPECT_GT(result.trace.access_fraction(2), 0.5);
}

// ------------------------------------------------------------ preload core
TEST(PreloadCoreTest, StatsAggregatePerSite) {
  shim::PreloadStatsTable table;
  table.on_alloc(0x1000, 100);
  table.on_alloc(0x1000, 200);
  table.on_alloc(0x2000, 50);
  table.on_free(0x1000, 100);
  EXPECT_EQ(table.num_sites(), 2u);
  EXPECT_EQ(table.total_allocs(), 3u);
  const std::string report = table.report();
  EXPECT_NE(report.find("site 1000 allocs 2 frees 1 bytes 300 peak 300"),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("site 2000"), std::string::npos);
}

TEST(PreloadCoreTest, SaturatingFreeNeverUnderflows) {
  shim::PreloadStatsTable table;
  table.on_alloc(0x1, 10);
  table.on_free(0x1, 100);  // free attributed to a site that over-counts
  table.on_alloc(0x1, 5);
  const std::string report = table.report();
  EXPECT_NE(report.find("bytes 15"), std::string::npos) << report;
}

TEST(PreloadCoreTest, TableSurvivesConcurrentHammering) {
  shim::PreloadStatsTable table;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&table, t] {
      for (int i = 0; i < 10'000; ++i)
        table.on_alloc(0x1000u + static_cast<std::uintptr_t>(i % 16) * 8,
                       static_cast<std::size_t>(t + 1));
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(table.num_sites(), 16u);
  EXPECT_EQ(table.total_allocs(), 40'000u);
}

TEST(PreloadCoreTest, TableFullDropsGracefully) {
  shim::PreloadStatsTable table;
  std::size_t accepted = 0;
  for (std::uintptr_t site = 1;
       site <= shim::PreloadStatsTable::kSlots + 10; ++site)
    accepted += table.on_alloc(site * 64, 1) ? 1 : 0;
  EXPECT_EQ(accepted, shim::PreloadStatsTable::kSlots);
  table.reset();
  EXPECT_EQ(table.num_sites(), 0u);
}

TEST(PreloadCoreTest, ConfigReadsEnvironment) {
  static const auto fake_getenv = [](const char* name) -> const char* {
    if (std::strcmp(name, "HMPT_PROFILE_OUT") == 0) return "/tmp/p.txt";
    if (std::strcmp(name, "HMPT_MIN_SIZE") == 0) return "4096";
    return nullptr;
  };
  const auto config = shim::read_preload_config(
      +[](const char* name) { return fake_getenv(name); });
  EXPECT_EQ(config.profile_path, "/tmp/p.txt");
  EXPECT_EQ(config.min_size, 4096u);
  EXPECT_TRUE(config.enabled);

  static const auto disabled_getenv = [](const char* name) -> const char* {
    return std::strcmp(name, "HMPT_DISABLE") == 0 ? "1" : nullptr;
  };
  const auto off = shim::read_preload_config(
      +[](const char* name) { return disabled_getenv(name); });
  EXPECT_FALSE(off.enabled);
}

}  // namespace
}  // namespace hmpt
