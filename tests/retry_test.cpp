// retry_test.cpp — the failure model in common/retry.h: deterministic
// backoff, cancellation tokens, the attempt loop's classification rules.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/retry.h"

namespace {

using namespace hmpt;

// ------------------------------------------------------------ RetryPolicy

TEST(RetryPolicyTest, ValidatesSettings) {
  RetryPolicy policy;
  EXPECT_NO_THROW(policy.validate());
  policy.max_attempts = 0;
  EXPECT_THROW(policy.validate(), Error);
  policy.max_attempts = 1;
  policy.jitter = 1.0;
  EXPECT_THROW(policy.validate(), Error);
  policy.jitter = 0.25;
  policy.backoff_multiplier = 0.5;
  EXPECT_THROW(policy.validate(), Error);
  policy.backoff_multiplier = 2.0;
  policy.attempt_deadline_s = -1.0;
  EXPECT_THROW(policy.validate(), Error);
}

TEST(RetryPolicyTest, BackoffIsDeterministicPerSeedAndStream) {
  RetryPolicy policy;
  policy.initial_backoff_s = 0.1;
  policy.seed = 42;
  // Same (seed, stream, attempt) → identical backoff, every time.
  for (int attempt = 1; attempt <= 5; ++attempt)
    EXPECT_DOUBLE_EQ(policy.backoff_s(attempt, 7),
                     policy.backoff_s(attempt, 7));
  // Different streams de-synchronise (jitter draws differ).
  bool any_different = false;
  for (int attempt = 1; attempt <= 5; ++attempt)
    if (policy.backoff_s(attempt, 1) != policy.backoff_s(attempt, 2))
      any_different = true;
  EXPECT_TRUE(any_different);
}

TEST(RetryPolicyTest, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy policy;
  policy.initial_backoff_s = 0.1;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_s = 0.5;
  policy.jitter = 0.0;  // isolate the exponential base
  EXPECT_DOUBLE_EQ(policy.backoff_s(1), 0.1);
  EXPECT_DOUBLE_EQ(policy.backoff_s(2), 0.2);
  EXPECT_DOUBLE_EQ(policy.backoff_s(3), 0.4);
  EXPECT_DOUBLE_EQ(policy.backoff_s(4), 0.5);  // capped
  EXPECT_DOUBLE_EQ(policy.backoff_s(10), 0.5);
}

TEST(RetryPolicyTest, JitterStaysWithinFraction) {
  RetryPolicy policy;
  policy.initial_backoff_s = 0.1;
  policy.backoff_multiplier = 1.0;
  policy.jitter = 0.25;
  policy.max_backoff_s = 1.0;
  for (std::uint64_t stream = 0; stream < 50; ++stream) {
    const double backoff = policy.backoff_s(1, stream);
    EXPECT_GE(backoff, 0.075);
    EXPECT_LE(backoff, 0.125);
  }
}

TEST(RetryPolicyTest, NoBackoffWhenInitialIsZero) {
  RetryPolicy policy;
  policy.initial_backoff_s = 0.0;
  EXPECT_DOUBLE_EQ(policy.backoff_s(1), 0.0);
  EXPECT_DOUBLE_EQ(policy.backoff_s(5), 0.0);
}

// --------------------------------------------------------- classification

TEST(RetryClassificationTest, TerminalPrefixesNeverRetry) {
  EXPECT_TRUE(is_terminal_error("terminal: unsupported platform"));
  EXPECT_TRUE(is_terminal_error("wrapped: terminal: inner"));
  EXPECT_TRUE(is_terminal_error("canceled: the job was canceled"));
  EXPECT_TRUE(is_terminal_error(
      "conflicting outcome for fingerprint abc"));
  EXPECT_FALSE(is_terminal_error("timeout: the attempt deadline expired"));
  EXPECT_FALSE(is_terminal_error("injected transient fault"));
  EXPECT_FALSE(is_terminal_error(""));
}

TEST(RetryClassificationTest, FormatAttemptsReadsAsOneLine) {
  std::vector<AttemptRecord> attempts = {{1, "boom", 0.1},
                                         {2, "boom again", 0.25}};
  const std::string text = format_attempts(attempts);
  EXPECT_NE(text.find("attempt 1: boom"), std::string::npos);
  EXPECT_NE(text.find("attempt 2: boom again"), std::string::npos);
  EXPECT_NE(text.find("; "), std::string::npos);
}

// ------------------------------------------------------------ CancelToken

TEST(CancelTokenTest, CancelWakesSleepersAndTripsCheck) {
  CancelToken token;
  EXPECT_FALSE(token.canceled());
  EXPECT_NO_THROW(token.check());

  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    token.cancel();
  });
  const auto start = std::chrono::steady_clock::now();
  // Would be a 10-second nap without the cancel.
  EXPECT_FALSE(token.sleep_for(10.0));
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_LT(waited, std::chrono::seconds(5));
  canceller.join();

  EXPECT_TRUE(token.canceled());
  try {
    token.check();
    FAIL() << "check() must throw after cancel()";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("canceled:"), std::string::npos);
  }
}

TEST(CancelTokenTest, DeadlineExpiresAndEarliestWins) {
  CancelToken token;
  EXPECT_FALSE(token.expired());
  EXPECT_TRUE(std::isinf(token.remaining_s()));

  token.set_deadline_after(60.0);
  token.set_deadline_after(0.01);   // tightens
  token.set_deadline_after(120.0);  // never loosens
  EXPECT_LE(token.remaining_s(), 0.011);

  // sleep_for wakes at the deadline, reporting an interrupted sleep.
  EXPECT_FALSE(token.sleep_for(10.0));
  EXPECT_TRUE(token.expired());
  try {
    token.check();
    FAIL() << "check() must throw past the deadline";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("timeout:"), std::string::npos);
  }
}

TEST(CancelTokenTest, CopiesShareState) {
  CancelToken token;
  CancelToken copy = token;
  copy.cancel();
  EXPECT_TRUE(token.canceled());
}

// ---------------------------------------------------- attempt_with_retries

TEST(AttemptTest, FirstTrySuccessHasNoFailureRecords) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  const auto result = attempt_with_retries(
      policy, 0, [](const CancelToken&) { return 41 + 1; });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result.value, 42);
  EXPECT_TRUE(result.attempts.empty());
  EXPECT_EQ(result.attempt_count(), 1);
}

TEST(AttemptTest, TransientFailuresRetryUntilSuccess) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_s = 0.0;  // keep the test fast
  int calls = 0;
  const auto result = attempt_with_retries(policy, 0, [&](const CancelToken&) {
    if (++calls < 3) raise("transient wobble");
    return calls;
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result.value, 3);
  EXPECT_EQ(result.attempts.size(), 2u);
  EXPECT_EQ(result.attempt_count(), 3);
  EXPECT_EQ(result.attempts[0].attempt, 1);
  EXPECT_NE(result.attempts[0].error.find("transient wobble"),
            std::string::npos);
}

TEST(AttemptTest, BudgetExhaustionReportsFullHistory) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_s = 0.0;
  int calls = 0;
  const auto result =
      attempt_with_retries(policy, 0, [&](const CancelToken&) -> int {
        ++calls;
        raise("always failing");
      });
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(result.attempts.size(), 3u);
  EXPECT_EQ(result.attempt_count(), 3);
}

TEST(AttemptTest, TerminalErrorStopsImmediately) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_s = 0.0;
  int calls = 0;
  const auto result =
      attempt_with_retries(policy, 0, [&](const CancelToken&) -> int {
        ++calls;
        raise("terminal: unsupported configuration");
      });
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(calls, 1);
  ASSERT_EQ(result.attempts.size(), 1u);
  EXPECT_NE(result.attempts[0].error.find("terminal:"), std::string::npos);
}

TEST(AttemptTest, AttemptDeadlineArmsTheToken) {
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff_s = 0.0;
  policy.attempt_deadline_s = 0.02;
  int calls = 0;
  const auto result =
      attempt_with_retries(policy, 0, [&](const CancelToken& token) -> int {
        ++calls;
        // A cooperative provider parks on the token and notices expiry.
        token.sleep_for(10.0);
        token.check();
        return 0;
      });
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(calls, 2);  // the timeout is transient: it retried once
  for (const auto& record : result.attempts)
    EXPECT_NE(record.error.find("timeout:"), std::string::npos);
}

TEST(AttemptTest, TotalDeadlineStopsTheLoop) {
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.initial_backoff_s = 0.05;
  policy.jitter = 0.0;
  policy.total_deadline_s = 0.15;
  std::atomic<int> calls{0};
  const auto start = std::chrono::steady_clock::now();
  const auto result =
      attempt_with_retries(policy, 0, [&](const CancelToken&) -> int {
        ++calls;
        raise("transient");
      });
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(result.ok());
  EXPECT_LT(calls.load(), 100);
  EXPECT_LT(waited, std::chrono::seconds(5));
}

TEST(AttemptTest, ParentCancelInterruptsBackoffAndLoop) {
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.initial_backoff_s = 5.0;  // the cancel must cut this short
  CancelToken parent;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    parent.cancel();
  });
  const auto start = std::chrono::steady_clock::now();
  const auto result = attempt_with_retries(
      policy, 0, [&](const CancelToken&) -> int { raise("transient"); },
      &parent);
  const auto waited = std::chrono::steady_clock::now() - start;
  canceller.join();
  EXPECT_FALSE(result.ok());
  EXPECT_LT(waited, std::chrono::seconds(4));
  ASSERT_FALSE(result.attempts.empty());
  EXPECT_NE(result.attempts.back().error.find("canceled:"),
            std::string::npos);
}

TEST(AttemptTest, StreamOfIsStable) {
  EXPECT_EQ(stream_of("abc"), stream_of("abc"));
  EXPECT_NE(stream_of("abc"), stream_of("abd"));
  // FNV-1a 64 of the empty string — pins the construction.
  EXPECT_EQ(stream_of(""), 1469598103934665603ULL);
}

}  // namespace
