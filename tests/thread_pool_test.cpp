// Edge-case tests for the ThreadPool primitive: empty and single-item
// ranges, more workers (chunks) than items, and exception propagation out
// of both parallel_for and parallel_chunks.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "common/error.h"
#include "common/thread_pool.h"

namespace hmpt {
namespace {

TEST(ThreadPoolEdgeTest, EmptyRangeRunsNothingAndReturns) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  pool.parallel_chunks(0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  // The pool stays usable afterwards.
  pool.parallel_for(3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 3);

  // The free helper tolerates empty ranges at any job count too.
  parallel_for(0, 0, [&](std::size_t) { ++calls; });
  parallel_for(4, 0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ThreadPoolEdgeTest, SingleItemRunsExactlyOnce) {
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  std::size_t seen = 99;
  pool.parallel_for(1, [&](std::size_t i) {
    ++calls;
    seen = i;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen, 0u);

  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  std::mutex mutex;
  pool.parallel_chunks(1, [&](std::size_t begin, std::size_t end) {
    std::lock_guard<std::mutex> lock(mutex);
    chunks.emplace_back(begin, end);
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], (std::pair<std::size_t, std::size_t>{0, 1}));
}

TEST(ThreadPoolEdgeTest, MoreChunksThanItemsSkipsEmptyChunks) {
  // 8 lanes over 3 items: every chunk fn(begin, end) must be non-empty,
  // cover the range exactly once, and stay contiguous.
  ThreadPool pool(8);
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_chunks(3, [&](std::size_t begin, std::size_t end) {
    std::lock_guard<std::mutex> lock(mutex);
    chunks.emplace_back(begin, end);
  });
  ASSERT_LE(chunks.size(), 3u);
  std::sort(chunks.begin(), chunks.end());
  std::size_t covered = 0;
  for (const auto& [begin, end] : chunks) {
    EXPECT_EQ(begin, covered);
    EXPECT_LT(begin, end);  // never an empty chunk
    covered = end;
  }
  EXPECT_EQ(covered, 3u);
}

TEST(ThreadPoolEdgeTest, ParallelForPropagatesTheTaskException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::size_t i) {
                          if (i == 13) raise("index 13 exploded");
                        }),
      Error);
  // Non-hmpt exceptions propagate too.
  EXPECT_THROW(pool.parallel_for(8,
                                 [&](std::size_t i) {
                                   if (i == 2)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // A drained region leaves the pool healthy.
  std::atomic<int> calls{0};
  pool.parallel_for(16, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 16);
}

TEST(ThreadPoolEdgeTest, ParallelChunksPropagatesTheTaskException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_chunks(100,
                                    [&](std::size_t begin, std::size_t) {
                                      if (begin == 0)
                                        raise("first chunk failed");
                                    }),
               Error);
  std::atomic<int> calls{0};
  pool.parallel_chunks(10, [&](std::size_t begin, std::size_t end) {
    calls += static_cast<int>(end - begin);
  });
  EXPECT_EQ(calls.load(), 10);
}

TEST(ThreadPoolEdgeTest, SerialPoolHandlesEdgesInCallerThread) {
  // A one-lane pool must run everything inline with the same semantics.
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  std::vector<std::size_t> order;
  pool.parallel_for(4, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3}));
  pool.parallel_for(0, [&](std::size_t) { order.push_back(99); });
  EXPECT_EQ(order.size(), 4u);
  EXPECT_THROW(
      pool.parallel_for(2, [&](std::size_t) { raise("serial boom"); }),
      Error);
}

}  // namespace
}  // namespace hmpt
