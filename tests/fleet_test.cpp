// Tests for the fleet dispatcher: differential byte-identity of fleet
// runs against in-process runs across worker counts, induced steals
// (stalled workers) and chaos (SIGKILLed workers), property-style fuzz
// over worker counts and steal thresholds (coverage exact, stores
// disjoint after dedup), tolerant manifest tailing under a
// truncated-write simulator, assignment-file round trips, and the
// hmpt_fleet / hmpt_campaign --fleet CLIs. Workers here are real
// hmpt_campaign child processes (HMPT_CAMPAIGN_PATH), so the whole
// plan/assign/progress-manifest protocol is exercised end to end.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "campaign/aggregate.h"
#include "campaign/campaign.h"
#include "campaign/merge.h"
#include "common/error.h"
#include "fleet/fleet.h"

namespace hmpt::fleet {
namespace {

namespace fs = std::filesystem;
using campaign::CampaignOptions;
using campaign::CampaignRunner;
using campaign::Scenario;
using campaign::ScenarioMatrix;
using campaign::ShardManifest;

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::stringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

void spit(const std::string& path, const std::string& content) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << content;
}

/// A fresh directory per test, removed on scope exit.
class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// The shared small-but-real campaign: 4 scenarios, reps 1.
std::vector<Scenario> scenarios() {
  ScenarioMatrix matrix;
  matrix.workloads = {campaign::parse_workload_spec("mg"),
                      campaign::parse_workload_spec(
                          "stream:array_gb=1,iterations=2")};
  matrix.platforms = {"xeon-max"};
  matrix.strategies = {"estimator", "online"};
  matrix.repetitions = 1;
  return matrix.expand();
}

/// Run the campaign in-process (single store, no sharding) and write the
/// reference artefacts every fleet configuration must reproduce.
std::string reference_run(const std::vector<Scenario>& full,
                          const std::string& dir) {
  CampaignOptions options;
  options.output_dir = dir;
  const auto result = CampaignRunner(options).run(full);
  EXPECT_TRUE(result.ok());
  campaign::write_artifacts(result, dir);
  return dir;
}

/// Baseline fleet options for in-process dispatch tests: real
/// hmpt_campaign workers, fast polling.
FleetOptions fleet_options(const std::string& out) {
  FleetOptions options;
  options.output_dir = out;
  options.worker_bin = HMPT_CAMPAIGN_PATH;
  options.poll_interval_s = 0.05;
  return options;
}

void expect_identical_artifacts(const std::string& got,
                                const std::string& want,
                                const std::vector<Scenario>& full) {
  EXPECT_EQ(slurp(got + "/runs.csv"), slurp(want + "/runs.csv"));
  EXPECT_EQ(slurp(got + "/summary.json"), slurp(want + "/summary.json"));
  for (const auto& s : full) {
    const std::string name = "/outcomes/" + s.fingerprint() + ".json";
    EXPECT_EQ(slurp(got + name), slurp(want + name)) << s.label();
  }
}

// ------------------------------------------------------------ differential

TEST(FleetTest, FleetsOfEverySizeReproduceTheUnshardedBytes) {
  TempDir root("hmpt_fleet_differential");
  const auto full = scenarios();
  const auto ref = reference_run(full, root.path() + "/ref");

  for (const int workers : {1, 2, 3}) {
    const std::string out =
        root.path() + "/fleet" + std::to_string(workers);
    auto options = fleet_options(out);
    options.workers = workers;
    FleetStats stats;
    const auto result = run_fleet(full, options, &stats);
    ASSERT_TRUE(result.ok()) << workers << " workers";
    campaign::write_artifacts(result, out);

    // Byte-identical artefacts and store; no steals on a healthy fleet,
    // exactly one launch per worker, zero overlap.
    expect_identical_artifacts(out, ref, full);
    EXPECT_EQ(stats.campaign, campaign::campaign_fingerprint(full));
    EXPECT_EQ(stats.scenarios, static_cast<int>(full.size()));
    EXPECT_EQ(stats.steals, 0) << workers << " workers";
    EXPECT_EQ(stats.worker_deaths, 0) << workers << " workers";
    EXPECT_EQ(stats.launches, std::min<int>(workers, 4));
    EXPECT_EQ(stats.merge.outcomes_merged, static_cast<int>(full.size()));
    EXPECT_EQ(stats.merge.overlapping, 0);
  }
}

// ------------------------------------------------------------------ steals

TEST(FleetTest, StalledWorkerIsStolenFromAndBytesAreIdentical) {
  TempDir root("hmpt_fleet_steal");
  const auto full = scenarios();
  const auto ref = reference_run(full, root.path() + "/ref");

  // Worker 2 never runs the real worker at all — its child just sleeps —
  // so its half of the campaign *must* be stolen by worker 1 for the
  // fleet to complete. The straggler threshold makes that happen fast.
  const std::string stall = root.path() + "/stall.sh";
  spit(stall,
       "#!/bin/sh\n"
       "idx=\"$1\"; shift\n"
       "if [ \"$idx\" = \"2\" ]; then exec sleep 600; fi\n"
       "exec \"$@\"\n");

  auto options = fleet_options(root.path() + "/fleet");
  options.workers = 2;
  options.exec_template = "sh " + stall + " {index} {cmd}";
  options.straggler_after_s = 0.5;
  FleetStats stats;
  const auto result = run_fleet(full, options, &stats);
  ASSERT_TRUE(result.ok());
  campaign::write_artifacts(result, options.output_dir);

  // Both of worker 2's scenarios were re-dealt, and the artefacts are
  // still byte-identical to the unsharded run.
  EXPECT_EQ(stats.steals, 2);
  EXPECT_GE(stats.launches, 3);  // 2 initial + at least 1 thief generation
  expect_identical_artifacts(options.output_dir, ref, full);

  // The dispatcher killed the stalled sleep on completion: no leaked
  // children still hold the stall script open (best-effort check — the
  // temp dir removes cleanly because nothing is running in it).
  EXPECT_EQ(stats.merge.outcomes_merged, static_cast<int>(full.size()));
}

TEST(FleetTest, SigkilledWorkerIsStolenFromAndBytesAreIdentical) {
  TempDir root("hmpt_fleet_chaos");
  const auto full = scenarios();
  const auto ref = reference_run(full, root.path() + "/ref");

  // Worker 1's first child is SIGKILLed right out of the gate (a marker
  // file keeps later generations honest, in case the dead slot is
  // re-used as a thief). The wrapper then exits 137, which the
  // dispatcher must classify as a death (steal), not a worker-reported
  // failure (abort). The longer-running smoke job in CI additionally
  // lands the SIGKILL mid-scenario; here determinism matters more.
  const std::string chaos = root.path() + "/chaos.sh";
  spit(chaos,
       "#!/bin/sh\n"
       "idx=\"$1\"; shift\n"
       "marker=\"" +
           root.path() +
           "/killed.marker\"\n"
           "if [ \"$idx\" = \"1\" ] && [ ! -e \"$marker\" ]; then\n"
           "  : > \"$marker\"\n"
           "  \"$@\" &\n"
           "  child=$!\n"
           "  kill -9 \"$child\" 2>/dev/null\n"
           "  wait \"$child\" 2>/dev/null\n"
           "  exit 137\n"
           "fi\n"
           "exec \"$@\"\n");

  auto options = fleet_options(root.path() + "/fleet");
  options.workers = 2;
  options.exec_template = "sh " + chaos + " {index} {cmd}";
  options.straggler_after_s = 10.0;  // deaths steal immediately regardless
  FleetStats stats;
  const auto result = run_fleet(full, options, &stats);
  ASSERT_TRUE(result.ok());
  campaign::write_artifacts(result, options.output_dir);

  EXPECT_GE(stats.worker_deaths, 1);
  expect_identical_artifacts(options.output_dir, ref, full);
  EXPECT_EQ(stats.merge.outcomes_merged, static_cast<int>(full.size()));
}

TEST(FleetTest, WorkerReportedFailureAbortsFailFast) {
  TempDir root("hmpt_fleet_failfast");
  const auto full = scenarios();

  // Every worker exits 1 immediately (a usage-style failure, not a
  // death): the fleet must abort rather than retry forever.
  const std::string fail = root.path() + "/fail.sh";
  spit(fail, "#!/bin/sh\nexit 1\n");

  auto options = fleet_options(root.path() + "/fleet");
  options.workers = 2;
  options.exec_template = "sh " + fail + " {index} {cmd}";
  EXPECT_THROW(run_fleet(full, options), Error);
}

TEST(FleetTest, DeadWorkersExhaustTheDealCapAndFailLoudly) {
  TempDir root("hmpt_fleet_dealcap");
  const auto full = scenarios();

  // Every worker dies instantly (exit 137) without completing anything:
  // re-deals burn through max_deals and the fleet must stop with a
  // loud error instead of spinning.
  const std::string die = root.path() + "/die.sh";
  spit(die, "#!/bin/sh\nexit 137\n");

  auto options = fleet_options(root.path() + "/fleet");
  options.workers = 2;
  options.exec_template = "sh " + die + " {index} {cmd}";
  options.straggler_after_s = 0.0;
  options.max_deals = 2;
  try {
    run_fleet(full, options);
    FAIL() << "a fleet whose workers always die must not report success";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("deal cap"), std::string::npos)
        << e.what();
  }
}

// ------------------------------------------------------------------- fuzz

TEST(FleetTest, FuzzWorkerCountsAndStealThresholds) {
  TempDir root("hmpt_fleet_fuzz");
  const auto full = scenarios();
  const auto ref = reference_run(full, root.path() + "/ref");
  const auto reference_payloads =
      campaign::OutcomeStore::open_existing(ref).load_all_payloads();

  std::set<std::string> campaign_fps;
  for (const auto& s : full) campaign_fps.insert(s.fingerprint());

  // straggler_after_s = 0 makes *every* live worker steal-eligible at
  // every poll: maximum duplicate execution, bounded only by max_deals.
  // The byte-identity invariant must hold at any aggression level.
  struct Case {
    int workers;
    double straggler_after_s;
  };
  const Case cases[] = {{1, 0.0}, {2, 0.0}, {3, 0.05}, {5, 30.0}};
  for (const auto& c : cases) {
    const std::string out = root.path() + "/fleet-" +
                            std::to_string(c.workers) + "-" +
                            std::to_string(static_cast<int>(
                                c.straggler_after_s * 100));
    auto options = fleet_options(out);
    options.workers = c.workers;
    options.straggler_after_s = c.straggler_after_s;
    FleetStats stats;
    const auto result = run_fleet(full, options, &stats);
    ASSERT_TRUE(result.ok())
        << c.workers << " workers, straggler " << c.straggler_after_s;
    campaign::write_artifacts(result, out);
    expect_identical_artifacts(out, ref, full);

    // Coverage is exact: the union of every worker manifest's claims is
    // precisely the campaign, and after the merge dedups overlapping
    // claims the merged store holds exactly one byte-identical record
    // per fingerprint.
    std::set<std::string> claimed;
    int claims = 0;
    for (int i = 1; i <= c.workers; ++i) {
      const auto manifest =
          ShardManifest::load(out + "/shard-" + std::to_string(i));
      for (const auto& entry : manifest.entries) {
        ASSERT_TRUE(campaign_fps.count(entry.fingerprint))
            << "claim outside the campaign";
        claimed.insert(entry.fingerprint);
        ++claims;
      }
    }
    EXPECT_EQ(claimed, campaign_fps);
    EXPECT_EQ(claims - static_cast<int>(claimed.size()),
              stats.merge.overlapping);
    EXPECT_EQ(campaign::OutcomeStore::open_existing(out).load_all_payloads(),
              reference_payloads);
    EXPECT_EQ(stats.merge.outcomes_merged, static_cast<int>(full.size()));
  }
}

// -------------------------------------------------------- manifest tailing

TEST(ManifestTailTest, TruncatedWritesReadAsDamagedNeverAsFailure) {
  TempDir dir("hmpt_fleet_tail");
  const auto full = scenarios();

  // No manifest at all: Missing, not an error.
  EXPECT_EQ(tail_manifest(dir.path(), 0, 0.0).state,
            ManifestTail::State::Missing);

  campaign::ManifestProgress progress(full, {1, 1}, dir.path());
  campaign::ScenarioRun run;
  run.scenario = full[0];
  run.fingerprint = full[0].fingerprint();
  run.status = campaign::ScenarioRun::Status::Executed;
  progress.record(run);
  const auto ok = tail_manifest(dir.path(), 0, 0.0);
  ASSERT_EQ(ok.state, ManifestTail::State::Ok);
  EXPECT_EQ(ok.manifest.entries.size(), 1u);

  // Truncated-write simulator: cut the manifest at every interesting
  // boundary (empty file, one byte, half, mid-closing-brace — size-1
  // would only shave the trailing newline, which still parses). However
  // torn, the tail must report Damaged — never throw, and never "parse"
  // into something claiming a scenario failed.
  const std::string path = ShardManifest::path_in(dir.path());
  const std::string bytes = slurp(path);
  ASSERT_GT(bytes.size(), 2u);
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{1}, bytes.size() / 2,
        bytes.size() - 2}) {
    spit(path, bytes.substr(0, cut));
    const auto torn = tail_manifest(dir.path(), 2, 0.001);
    EXPECT_EQ(torn.state, ManifestTail::State::Damaged) << "cut " << cut;
    EXPECT_TRUE(torn.manifest.entries.empty()) << "cut " << cut;
  }

  // A concurrent writer completing the rewrite mid-retry heals the read:
  // the retry loop returns Ok once the full bytes land.
  spit(path, bytes.substr(0, bytes.size() / 2));
  std::thread repair([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    spit(path + ".tmp", bytes);
    fs::rename(path + ".tmp", path);
  });
  const auto healed = tail_manifest(dir.path(), 400, 0.005);
  repair.join();
  ASSERT_EQ(healed.state, ManifestTail::State::Ok);
  EXPECT_EQ(healed.manifest.entries.size(), 1u);
}

// ------------------------------------------------------- assignment files

TEST(AssignmentFileTest, RoundTripsAndSkipsCommentsAndBlanks) {
  TempDir dir("hmpt_fleet_assign");
  const std::string path = dir.path() + "/assign.txt";
  const std::vector<std::string> fps = {"00aa11bb22cc33dd", "ffee001122334455"};
  save_assignment(path, fps);
  EXPECT_EQ(load_assignment(path), fps);

  // Hand-edited files survive comments, blank lines and stray spaces.
  spit(path,
       "# stolen set for worker 3\n"
       "\n"
       "  00aa11bb22cc33dd \r\n"
       "ffee001122334455\n");
  EXPECT_EQ(load_assignment(path), fps);

  EXPECT_THROW(load_assignment(dir.path() + "/missing.txt"), Error);
}

// -------------------------------------------------------------------- CLI

int run_cli(const std::string& cmd) {
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
}

TEST(FleetCliTest, FleetBinaryAndCampaignFleetFlagReproduceReferenceBytes) {
  TempDir root("hmpt_fleet_cli");

  // A 2-scenario campaign (mg × estimator/online), reps 1.
  ScenarioMatrix matrix;
  matrix.workloads = {campaign::parse_workload_spec("mg")};
  matrix.platforms = {"xeon-max"};
  matrix.strategies = {"estimator", "online"};
  matrix.repetitions = 1;
  const auto full = matrix.expand();
  const auto ref = reference_run(full, root.path() + "/ref");

  const std::string campaign_flags =
      " --workload mg --strategy estimator --strategy online --reps 1";
  {
    const std::string out = root.path() + "/fleet";
    const std::string log = root.path() + "/fleet.log";
    const std::string trace = root.path() + "/fleet-trace.json";
    const int rc = run_cli(std::string(HMPT_FLEET_PATH) + campaign_flags +
                           " --workers 2 --poll-interval 0.05 --out " + out +
                           " --trace " + trace + " > " + log + " 2>&1");
    ASSERT_EQ(rc, 0) << slurp(log);
    expect_identical_artifacts(out, ref, full);
    // The dispatch left fleet lifecycle spans in the trace.
    const std::string trace_bytes = slurp(trace);
    EXPECT_NE(trace_bytes.find("\"dispatch\""), std::string::npos);
    EXPECT_NE(trace_bytes.find("\"fleet\""), std::string::npos);
    // The merged store is a complete 1/1 campaign of its own: manifest
    // included, so hmpt_merge can regenerate artefacts from it.
    EXPECT_NO_THROW(ShardManifest::load(out));
  }
  {
    const std::string out = root.path() + "/campaign-fleet";
    const std::string log = root.path() + "/campaign-fleet.log";
    const int rc = run_cli(std::string(HMPT_CAMPAIGN_PATH) + campaign_flags +
                           " --fleet 2 --poll-interval 0.05 --out " + out +
                           " > " + log + " 2>&1");
    ASSERT_EQ(rc, 0) << slurp(log);
    expect_identical_artifacts(out, ref, full);
  }
  {
    // Bad combinations are usage errors (exit 1), not crashes.
    const std::string log = root.path() + "/bad.log";
    EXPECT_EQ(run_cli(std::string(HMPT_CAMPAIGN_PATH) + campaign_flags +
                      " --fleet 2 --shard 1/2 > " + log + " 2>&1"),
              1);
    EXPECT_EQ(run_cli(std::string(HMPT_FLEET_PATH) + campaign_flags +
                      " > " + log + " 2>&1"),
              1);  // --workers is required
  }
}

}  // namespace
}  // namespace hmpt::fleet
