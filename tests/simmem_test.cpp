// Tests for hmpt::sim — pool curves, cache hierarchy, phase solver,
// roofline, simulator front-end. These pin down the mechanisms the paper's
// platform analysis (Sec. I-A) reports.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/units.h"
#include "simmem/simulator.h"

namespace hmpt::sim {
namespace {

using topo::PoolKind;

class PoolModelTest : public ::testing::Test {
 protected:
  topo::Machine machine_ = topo::xeon_max_9468_single_flat_snc4();
  MemSystemConfig config_ = default_spr_hbm_calibration();
  PoolPerfModel model_{machine_, config_};
};

TEST_F(PoolModelTest, HbmLatencyIsTwentyPercentHigher) {
  const double ratio = model_.idle_latency(PoolKind::HBM) /
                       model_.idle_latency(PoolKind::DDR);
  EXPECT_NEAR(ratio, 1.2, 0.02);
}

TEST_F(PoolModelTest, SocketSaturationMatchesPaper) {
  // ~200 GB/s DDR and ~700 GB/s HBM achieved per socket (Fig. 2).
  const double ddr = model_.stream_bandwidth(PoolKind::DDR, 48, 4);
  const double hbm = model_.stream_bandwidth(PoolKind::HBM, 48, 4);
  EXPECT_NEAR(ddr / GB, 200.0, 5.0);
  EXPECT_NEAR(hbm / GB, 675.0, 50.0);
}

TEST_F(PoolModelTest, DdrSaturatesEarlyHbmKeepsScaling) {
  // Fig. 2 shape: DDR flat from ~4 threads/tile, HBM still rising at 12.
  const double ddr4 = model_.stream_bandwidth(PoolKind::DDR, 16, 4);
  const double ddr12 = model_.stream_bandwidth(PoolKind::DDR, 48, 4);
  EXPECT_NEAR(ddr12 / ddr4, 1.0, 0.03);
  const double hbm8 = model_.stream_bandwidth(PoolKind::HBM, 32, 4);
  const double hbm12 = model_.stream_bandwidth(PoolKind::HBM, 48, 4);
  EXPECT_GT(hbm12 / hbm8, 1.2);
}

TEST_F(PoolModelTest, StreamBandwidthMonotoneInThreads) {
  for (PoolKind kind : {PoolKind::DDR, PoolKind::HBM}) {
    double prev = 0.0;
    for (int t = 1; t <= 48; ++t) {
      const double bw = model_.stream_bandwidth(kind, t, 4);
      EXPECT_GE(bw, prev);
      prev = bw;
    }
  }
}

TEST_F(PoolModelTest, SingleThreadPrefersDdr) {
  // Lower latency wins when parallelism cannot be exploited.
  EXPECT_GT(model_.stream_bandwidth(PoolKind::DDR, 1, 1),
            model_.stream_bandwidth(PoolKind::HBM, 1, 1));
  EXPECT_GT(model_.random_bandwidth(PoolKind::DDR, 1, 1),
            model_.random_bandwidth(PoolKind::HBM, 1, 1));
}

TEST_F(PoolModelTest, RandomCrossoverAtHighThreadCounts) {
  // Fig. 4: the indirect sum catches up only near full occupancy.
  const double lo = model_.random_bandwidth(PoolKind::HBM, 8, 4) /
                    model_.random_bandwidth(PoolKind::DDR, 8, 4);
  const double hi = model_.random_bandwidth(PoolKind::HBM, 48, 4) /
                    model_.random_bandwidth(PoolKind::DDR, 48, 4);
  EXPECT_LT(lo, 0.9);
  EXPECT_GT(hi, 1.0);
}

TEST_F(PoolModelTest, ChaseBandwidthIsLatencyBound) {
  const double one = model_.chase_bandwidth(PoolKind::DDR, 1);
  EXPECT_NEAR(one, kCacheLine / config_.of(PoolKind::DDR).idle_latency,
              1e-6);
  // Scales linearly with threads (one outstanding miss each, Sec. I-A).
  EXPECT_NEAR(model_.chase_bandwidth(PoolKind::DDR, 48) / one, 48.0, 1e-9);
  // DDR beats HBM at any thread count.
  EXPECT_GT(model_.chase_bandwidth(PoolKind::DDR, 48),
            model_.chase_bandwidth(PoolKind::HBM, 48));
}

TEST_F(PoolModelTest, ComputeRateScalesWithThreadsAndVectorization) {
  EXPECT_DOUBLE_EQ(model_.compute_rate(2, true),
                   2.0 * model_.compute_rate(1, true));
  EXPECT_GT(model_.compute_rate(1, true), model_.compute_rate(1, false));
}

TEST_F(PoolModelTest, InvalidArgumentsThrow) {
  EXPECT_THROW(model_.stream_bandwidth(PoolKind::DDR, 0, 1), Error);
  EXPECT_THROW(model_.stream_bandwidth(PoolKind::DDR, 1, 0), Error);
  EXPECT_THROW(model_.stream_bandwidth(PoolKind::DDR, 1, 99), Error);
  EXPECT_THROW(model_.chase_bandwidth(PoolKind::DDR, 0), Error);
}

// ------------------------------------------------------------------- cache
TEST(CacheTest, HitFractionsPartitionTheWindow) {
  const auto cache = spr_single_core_hierarchy();
  for (double window : {8.0 * KB, 256.0 * KB, 8.0 * MB, 256.0 * MB}) {
    const auto fractions = cache.hit_fractions(window);
    double total = cache.memory_fraction(window);
    for (double f : fractions) total += f;
    EXPECT_NEAR(total, 1.0, 1e-12) << window;
  }
}

TEST(CacheTest, LatencyPlateausMatchFig3) {
  const auto cache = spr_single_core_hierarchy();
  const double ddr_lat = 107.0 * ns;
  // L1-resident window: ~L1 latency.
  EXPECT_NEAR(cache.effective_latency(8.0 * KB, ddr_lat) / ns, 1.9, 0.1);
  // Out-of-cache window: approaches memory latency.
  EXPECT_GT(cache.effective_latency(256.0 * MB, ddr_lat) / ns, 95.0);
  // Monotone in window size.
  double prev = 0.0;
  for (int e = 3; e <= 18; ++e) {
    const double lat =
        cache.effective_latency(static_cast<double>(1 << e) * KB, ddr_lat);
    EXPECT_GE(lat, prev);
    prev = lat;
  }
}

TEST(CacheTest, InvalidHierarchyThrows) {
  EXPECT_THROW(CacheHierarchy({}), Error);
  // Non-increasing capacities rejected.
  EXPECT_THROW(CacheHierarchy({{"L1", 64.0 * KiB, 1.0 * ns},
                               {"L2", 32.0 * KiB, 5.0 * ns}}),
               Error);
}

// ------------------------------------------------------------------ phases
TEST(PhaseTraceTest, AggregatesBytesAndFlops) {
  PhaseTrace trace;
  KernelPhase phase;
  phase.flops = 100.0;
  phase.streams.push_back({0, 10.0, 5.0, AccessPattern::Sequential, true,
                           0.0});
  phase.streams.push_back({2, 20.0, 0.0, AccessPattern::Random, true, 0.0});
  trace.phases.push_back(phase);
  EXPECT_DOUBLE_EQ(trace.total_bytes(), 35.0);
  EXPECT_DOUBLE_EQ(trace.total_bytes_of_group(0), 15.0);
  EXPECT_DOUBLE_EQ(trace.total_flops(), 100.0);
  EXPECT_EQ(trace.num_groups(), 3);
  EXPECT_NEAR(trace.access_fraction(2), 20.0 / 35.0, 1e-12);
}

TEST(PhaseTraceTest, ScaleAndAppend) {
  PhaseTrace a;
  KernelPhase phase;
  phase.flops = 10.0;
  phase.streams.push_back({0, 8.0, 0.0, AccessPattern::Sequential, true,
                           0.0});
  a.phases.push_back(phase);
  PhaseTrace b = a;
  a.append(b);
  EXPECT_EQ(a.phases.size(), 2u);
  a.scale(0.5);
  EXPECT_DOUBLE_EQ(a.total_bytes(), 8.0);
  EXPECT_DOUBLE_EQ(a.total_flops(), 10.0);
  EXPECT_THROW(a.scale(0.0), Error);
}

// ------------------------------------------------------------------ solver
class SolverTest : public ::testing::Test {
 protected:
  topo::Machine machine_ = topo::xeon_max_9468_single_flat_snc4();
  MemSystemConfig config_ = default_spr_hbm_calibration();
  PoolPerfModel model_{machine_, config_};
  CacheHierarchy cache_ = spr_single_core_hierarchy();
  StreamBottleneckSolver solver_{model_, cache_};
  ExecutionContext ctx_{48, 4};
};

TEST_F(SolverTest, SingleStreamMatchesBandwidthDivision) {
  KernelPhase phase;
  phase.streams.push_back({0, 100.0 * GB, 0.0, AccessPattern::Sequential,
                           true, 0.0});
  const auto ddr = solver_.time_phase(
      phase, [](int) { return PoolKind::DDR; }, ctx_);
  EXPECT_NEAR(ddr.total,
              100.0 * GB / model_.stream_bandwidth(PoolKind::DDR, 48, 4),
              1e-9);
  EXPECT_EQ(ddr.bottleneck, static_cast<int>(PoolKind::DDR));
}

TEST_F(SolverTest, SplitStreamsUseBothPoolsConcurrently) {
  // Two equal streams: placing one in HBM should shrink time towards the
  // DDR stream alone — the pools' bandwidths add up.
  KernelPhase phase;
  phase.streams.push_back({0, 50.0 * GB, 0.0, AccessPattern::Sequential,
                           true, 0.0});
  phase.streams.push_back({1, 50.0 * GB, 0.0, AccessPattern::Sequential,
                           true, 0.0});
  const auto all_ddr = solver_.time_phase(
      phase, [](int) { return PoolKind::DDR; }, ctx_);
  const auto split = solver_.time_phase(
      phase, [](int g) { return g == 0 ? PoolKind::DDR : PoolKind::HBM; },
      ctx_);
  EXPECT_NEAR(split.total, all_ddr.total / 2.0, all_ddr.total * 0.01);
}

TEST_F(SolverTest, ComputeFloorClipsFastPlacements) {
  KernelPhase phase;
  phase.streams.push_back({0, 10.0 * GB, 0.0, AccessPattern::Sequential,
                           true, 0.0});
  phase.flops = 1e12;
  const double compute_time = 1e12 / model_.compute_rate(48, true);
  const auto hbm = solver_.time_phase(
      phase, [](int) { return PoolKind::HBM; }, ctx_);
  EXPECT_GE(hbm.total, compute_time * (1.0 - 1e-12));
}

TEST_F(SolverTest, CrossPoolWritePenaltyIsDirectional) {
  // Copy kernel (Fig. 5a): HBM->DDR suffers, DDR->HBM does not.
  KernelPhase copy;
  copy.streams.push_back({0, 16.0 * GB, 0.0, AccessPattern::Sequential,
                          true, 0.0});
  copy.streams.push_back({1, 0.0, 16.0 * GB, AccessPattern::Sequential,
                          true, 0.0});
  const auto h2d = solver_.time_phase(
      copy, [](int g) { return g == 0 ? PoolKind::HBM : PoolKind::DDR; },
      ctx_);
  const auto d2h = solver_.time_phase(
      copy, [](int g) { return g == 0 ? PoolKind::DDR : PoolKind::HBM; },
      ctx_);
  // Without the penalty both would be ~16 GB / 200 GB/s; with it the
  // HBM->DDR direction is ~1/0.65 slower.
  EXPECT_NEAR(h2d.total / d2h.total, 1.0 / 0.65, 0.05);
}

TEST_F(SolverTest, WriteAllocateAddsRfoTraffic) {
  KernelPhase nt;
  nt.streams.push_back({0, 0.0, 16.0 * GB, AccessPattern::Sequential, true,
                        0.0});
  KernelPhase rfo = nt;
  rfo.streams[0].nontemporal_writes = false;
  const auto placement = [](int) { return PoolKind::DDR; };
  const double t_nt = solver_.time_phase(nt, placement, ctx_).total;
  const double t_rfo = solver_.time_phase(rfo, placement, ctx_).total;
  EXPECT_NEAR(t_rfo / t_nt, 2.0, 1e-9);  // write_allocate_read_factor = 1
}

TEST_F(SolverTest, ChaseStreamPrefersDdr) {
  KernelPhase chase;
  chase.streams.push_back({0, 1.0 * GB, 0.0, AccessPattern::PointerChase,
                           true, 8.0 * GB});
  const double t_ddr = solver_.time_phase(
      chase, [](int) { return PoolKind::DDR; }, ctx_).total;
  const double t_hbm = solver_.time_phase(
      chase, [](int) { return PoolKind::HBM; }, ctx_).total;
  EXPECT_GT(t_hbm, t_ddr);
  EXPECT_NEAR(t_hbm / t_ddr, 1.196, 0.02);
}

TEST_F(SolverTest, TraceTimeIsSumOfPhases) {
  KernelPhase phase;
  phase.streams.push_back({0, 10.0 * GB, 0.0, AccessPattern::Sequential,
                           true, 0.0});
  PhaseTrace trace;
  trace.phases = {phase, phase, phase};
  const auto placement = Placement::uniform(1, PoolKind::DDR);
  const double one = solver_.time_phase(phase, placement.fn(), ctx_).total;
  EXPECT_NEAR(solver_.time_trace(trace, placement, ctx_), 3.0 * one, 1e-12);
}

TEST_F(SolverTest, PhaseBandwidthCountsAllBytes) {
  const double bytes = 16.0 * GB;
  KernelPhase copy;
  copy.streams.push_back({0, bytes, 0.0, AccessPattern::Sequential, true,
                          0.0});
  copy.streams.push_back({1, 0.0, bytes, AccessPattern::Sequential, true,
                          0.0});
  const double bw = solver_.phase_bandwidth(
      copy, [](int) { return PoolKind::DDR; }, ctx_);
  const double ref = model_.stream_bandwidth(PoolKind::DDR, 48, 4);
  EXPECT_NEAR(bw, ref, ref * 1e-12);
}

// --------------------------------------------------------------- placement
TEST(PlacementTest, UniformAndSetters) {
  auto p = Placement::uniform(3, PoolKind::DDR);
  EXPECT_EQ(p.size(), 3);
  p.set(1, PoolKind::HBM);
  EXPECT_EQ(p.of(0), PoolKind::DDR);
  EXPECT_EQ(p.of(1), PoolKind::HBM);
  EXPECT_THROW(p.of(3), Error);
  EXPECT_THROW(p.set(-1, PoolKind::DDR), Error);
}

// ---------------------------------------------------------------- roofline
TEST(RooflineTest, CeilingsMatchFig8) {
  const auto roofline = spr_hbm_roofline();
  EXPECT_DOUBLE_EQ(roofline.bandwidth_of("HBM"), 700.0 * GB);
  EXPECT_DOUBLE_EQ(roofline.bandwidth_of("DDR"), 200.0 * GB);
  EXPECT_DOUBLE_EQ(roofline.peak_compute(), 3225.6e9);
  EXPECT_THROW(roofline.bandwidth_of("L4"), Error);
}

TEST(RooflineTest, AttainableIsMinOfRoofs) {
  const auto roofline = spr_hbm_roofline();
  // Memory-bound region: performance = AI * BW.
  EXPECT_NEAR(roofline.attainable(0.1, "DDR"), 0.1 * 200.0 * GB, 1.0);
  // Compute-bound region: clipped at peak.
  EXPECT_DOUBLE_EQ(roofline.attainable(1000.0, "DDR"), 3225.6e9);
  // Ridge points: HBM's is left of DDR's.
  EXPECT_LT(roofline.ridge_point("HBM"), roofline.ridge_point("DDR"));
  EXPECT_NEAR(roofline.ridge_point("HBM"), 3225.6 / 700.0, 1e-9);
}

// --------------------------------------------------------------- simulator
TEST(SimulatorTest, NoiseFreeMeasurementIsDeterministic) {
  auto simulator = MachineSimulator::paper_platform();
  KernelPhase phase;
  phase.streams.push_back({0, 10.0 * GB, 0.0, AccessPattern::Sequential,
                           true, 0.0});
  PhaseTrace trace;
  trace.phases.push_back(phase);
  const auto placement = Placement::uniform(1, PoolKind::DDR);
  const auto ctx = simulator.full_machine();
  const double a = simulator.measure_trace(trace, placement, ctx, {0, 0});
  const double b = simulator.measure_trace(trace, placement, ctx, {0, 1});
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(SimulatorTest, NoiseStaysWithinReason) {
  MachineSimulator simulator(topo::xeon_max_9468_duo_flat_snc4(),
                             default_spr_hbm_calibration(), {0.02, 99});
  KernelPhase phase;
  phase.streams.push_back({0, 10.0 * GB, 0.0, AccessPattern::Sequential,
                           true, 0.0});
  PhaseTrace trace;
  trace.phases.push_back(phase);
  const auto placement = Placement::uniform(1, PoolKind::DDR);
  const auto ctx = simulator.full_machine();
  const double clean = simulator.time_trace(trace, placement, ctx);
  for (int i = 0; i < 50; ++i) {
    const double noisy = simulator.measure_trace(
        trace, placement, ctx, {0, static_cast<std::uint64_t>(i)});
    EXPECT_NEAR(noisy / clean, 1.0, 0.15);
    EXPECT_GT(noisy, 0.0);
  }
}

TEST(SimulatorTest, NoiseStreamsAreCallOrderIndependent) {
  // The determinism guarantee of simulator.h: the noise of a given
  // (stream, repetition) key is a pure function of the key, whatever ran
  // before — parallel sweeps and cheaper strategies see identical noise.
  MachineSimulator simulator(topo::xeon_max_9468_duo_flat_snc4(),
                             default_spr_hbm_calibration(), {0.02, 99});
  KernelPhase phase;
  phase.streams.push_back({0, 10.0 * GB, 0.0, AccessPattern::Sequential,
                           true, 0.0});
  PhaseTrace trace;
  trace.phases.push_back(phase);
  const auto placement = Placement::uniform(1, PoolKind::DDR);
  const auto ctx = simulator.full_machine();

  const double first = simulator.measure_trace(trace, placement, ctx, {3, 1});
  for (int i = 0; i < 7; ++i)  // interleave unrelated measurements
    simulator.measure_trace(trace, placement, ctx,
                            {static_cast<std::uint64_t>(i), 0});
  // Exactly reproducible, and genuinely distinct across streams and reps.
  EXPECT_EQ(first, simulator.measure_trace(trace, placement, ctx, {3, 1}));
  EXPECT_NE(first, simulator.measure_trace(trace, placement, ctx, {3, 2}));
  EXPECT_NE(first, simulator.measure_trace(trace, placement, ctx, {4, 1}));

  // Distinct seeds give distinct streams for the same key.
  MachineSimulator reseeded(topo::xeon_max_9468_duo_flat_snc4(),
                            default_spr_hbm_calibration(), {0.02, 100});
  EXPECT_NE(first, reseeded.measure_trace(trace, placement, ctx, {3, 1}));
}

TEST(SimulatorTest, SocketContextValidatesThreads) {
  auto simulator = MachineSimulator::paper_platform_single();
  const auto ctx = simulator.socket_context(6);
  EXPECT_EQ(ctx.threads, 24);
  EXPECT_EQ(ctx.tiles, 4);
  EXPECT_THROW(simulator.socket_context(0), Error);
  EXPECT_THROW(simulator.socket_context(13), Error);
}

TEST(SimulatorTest, ChaseLatencyWindowSweepHitsBothEnds) {
  auto simulator = MachineSimulator::paper_platform_single();
  EXPECT_LT(simulator.chase_latency(8.0 * KB, PoolKind::DDR), 3.0 * ns);
  EXPECT_GT(simulator.chase_latency(256.0 * MB, PoolKind::HBM), 110.0 * ns);
}

}  // namespace
}  // namespace hmpt::sim
