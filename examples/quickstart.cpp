// quickstart — the five-minute tour of hmpt.
//
// Runs a small application (mini STREAM) through the SHIM allocator on the
// simulated Xeon Max platform, profiles its allocations with IBS-style
// sampling, sweeps all DDR/HBM placements, prints the paper-style summary
// view, and emits the placement plan you would apply to the next run.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "common/units.h"
#include "core/grouping.h"
#include "core/planner.h"
#include "core/report.h"
#include "core/session.h"
#include "core/summary.h"
#include "simmem/simulator.h"
#include "workloads/stream.h"

int main() {
  using namespace hmpt;

  // --- 1. A simulated platform (the paper's dual Xeon Max 9468).
  auto simulator = sim::MachineSimulator::paper_platform();
  std::cout << simulator.machine().describe() << '\n';

  // --- 2. Run the application through the SHIM allocator with sampling.
  pools::PoolAllocator pool(simulator.machine());
  shim::ShimAllocator shim(pool);
  sample::IbsSampler sampler({512, sample::SamplingMode::Poisson, 1});
  const auto run = workloads::run_mini_stream(shim, 1u << 14, 2, &sampler);
  std::cout << "mini STREAM residual: " << run.max_residual << "\n\n";

  // --- 3. Group the intercepted allocations (top-k + rest).
  const auto usage = shim.registry().site_usage(shim.sites());
  const auto densities =
      tuner::site_densities(shim.registry(), shim.sites(),
                            sampler.report());
  const auto groups = tuner::build_groups(usage, densities, {0.0, 8});
  std::cout << "allocation groups:\n";
  for (const auto& g : groups)
    std::cout << "  " << g.label << "  " << format_bytes(g.bytes)
              << "  density " << format_percent(g.access_density) << '\n';

  // --- 4. Tune the paper-scale STREAM workload through the Session
  //        facade: one fluent call sweeps every placement (strategy
  //        "exhaustive"; swap the name for "online" or "estimator" to
  //        search the same space with far fewer measurements).
  workloads::StreamWorkload workload(16.0 * GB, 1);
  const auto outcome = tuner::Session::on(simulator)
                           .workload(workload)
                           .strategy("exhaustive")
                           .repetitions(3)
                           .run();
  const auto summary = tuner::summarize(*outcome.sweep);

  std::cout << '\n'
            << tuner::render_summary_view(summary, workload.name()).scatter;
  std::cout << "max speedup " << summary.max_speedup << "x at "
            << format_percent(summary.max_usage) << " HBM usage; 90 % of it"
            << " already at " << format_percent(summary.usage90) << "\n"
            << "(" << outcome.configs_measured << " configurations, "
            << outcome.measurements << " simulated runs)\n\n";

  // --- 5. Materialise the placement plan for the next run.
  std::vector<tuner::AllocationGroup> stream_groups(3);
  stream_groups[0].label = "stream::a";
  stream_groups[1].label = "stream::b";
  stream_groups[2].label = "stream::c";
  const auto plan =
      tuner::to_placement_plan(stream_groups, summary.usage90_mask);
  std::cout << "placement plan for the 90 % configuration:\n"
            << plan.serialize();
  return 0;
}
