// stream_placement — the paper's platform investigation as an application
// of the public API (Figs. 2 and 5): measures STREAM bandwidth for every
// per-array DDR/HBM placement, demonstrating the mixed-pool effects that
// motivate allocation-level tuning — including the HBM->DDR copy anomaly
// and the "one input can stay in DDR for free" Add result.
#include <iostream>

#include "common/table.h"
#include "common/units.h"
#include "simmem/simulator.h"
#include "workloads/stream.h"

int main() {
  using namespace hmpt;
  using topo::PoolKind;

  auto simulator = sim::MachineSimulator::paper_platform_single();
  const auto ctx = simulator.socket_context(12);  // fully loaded socket
  const double array_bytes = 16.0 * GB;

  const auto name_of = [](PoolKind kind) {
    return kind == PoolKind::DDR ? "DDR" : "HBM";
  };

  std::cout << "STREAM per-array placement study, one socket, 12 "
               "threads/tile, 16 GB arrays\n\n";

  // Copy: c = a. All four placements of (a, c).
  Table copy_table({"a (src)", "c (dst)", "bandwidth", "vs DDR-only"});
  const auto copy = workloads::make_stream_phase(
      workloads::StreamKernel::Copy, array_bytes);
  const double copy_ddr = simulator.phase_bandwidth(
      copy, sim::Placement::uniform(3, PoolKind::DDR), ctx);
  for (PoolKind src : {PoolKind::DDR, PoolKind::HBM})
    for (PoolKind dst : {PoolKind::DDR, PoolKind::HBM}) {
      const double bw = simulator.phase_bandwidth(
          copy, sim::Placement({src, src, dst}), ctx);
      copy_table.add_row({name_of(src), name_of(dst),
                          format_bandwidth(bw), cell(bw / copy_ddr, 2)});
    }
  std::cout << "Copy (c = a):\n" << copy_table.to_text() << '\n';

  // Add: c = a + b. All eight placements.
  Table add_table({"a", "b", "c", "bandwidth", "vs HBM-only"});
  const auto add = workloads::make_stream_phase(
      workloads::StreamKernel::Add, array_bytes);
  const double add_hbm = simulator.phase_bandwidth(
      add, sim::Placement::uniform(3, PoolKind::HBM), ctx);
  for (PoolKind a : {PoolKind::DDR, PoolKind::HBM})
    for (PoolKind b : {PoolKind::DDR, PoolKind::HBM})
      for (PoolKind c : {PoolKind::DDR, PoolKind::HBM}) {
        const double bw =
            simulator.phase_bandwidth(add, sim::Placement({a, b, c}), ctx);
        add_table.add_row({name_of(a), name_of(b), name_of(c),
                           format_bandwidth(bw), cell(bw / add_hbm, 2)});
      }
  std::cout << "Add (c = a + b):\n" << add_table.to_text() << '\n';

  std::cout
      << "observations (as in the paper):\n"
      << "  * copying HBM->DDR is far below its expected bandwidth, while\n"
      << "    DDR->HBM is not — writes into the slow pool couple badly;\n"
      << "  * DDR+HBM->HBM Add runs at (near-)HBM-only speed: one third\n"
      << "    of the working set can stay in DDR at no cost.\n";
  return 0;
}
