// online_tuning — the paper's stated future direction (Sec. III): online
// profiling and control instead of an offline 2^n sweep.
//
// The "online" strategy starts from all-DDR and, between iterations of the
// running application, greedily migrates the allocation group with the
// best expected gain per HBM byte, keeping a move only when the next
// observed iteration confirms the improvement. This example tunes every
// paper benchmark through the Session facade — the same front door as the
// exhaustive sweep, just a different strategy name — and compares cost
// (measured runs) and result, then demonstrates the matching low-level
// primitive: live object migration in the pool allocator.
#include <cstring>
#include <iostream>

#include "common/table.h"
#include "common/units.h"
#include "core/session.h"
#include "simmem/simulator.h"
#include "workloads/app_models.h"

int main() {
  using namespace hmpt;

  auto simulator = sim::MachineSimulator::paper_platform();
  const auto suite = workloads::paper_benchmark_suite(simulator);

  Table table({"Application", "online speedup", "exhaustive max",
               "online runs", "exhaustive runs"});
  for (const auto& app : suite) {
    const auto online = tuner::Session::on(simulator)
                            .workload(app.workload)
                            .context(app.context)
                            .strategy("online")
                            .run();
    const auto exhaustive = tuner::Session::on(simulator)
                                .workload(app.workload)
                                .context(app.context)
                                .strategy("exhaustive")
                                .repetitions(3)
                                .run();
    table.add_row({app.name, cell(online.speedup, 2) + "x",
                   cell(exhaustive.speedup, 2) + "x",
                   std::to_string(online.measurements),
                   std::to_string(exhaustive.measurements)});
  }
  std::cout << table.to_text() << '\n';

  // Show one search in detail, watching it live through the progress hook.
  const auto mg = workloads::make_mg_model(simulator);
  const auto result = tuner::Session::on(simulator)
                          .workload(mg.workload)
                          .context(mg.context)
                          .strategy("online")
                          .progress([&](const tuner::TuningProgress& p) {
                            std::cout << "  measured config " << p.mask
                                      << " in " << format_time(p.observed_time)
                                      << " (best so far "
                                      << cell(p.best_speedup, 2) << "x)\n";
                          })
                          .run();
  std::cout << '\n' << result.to_text() << '\n';

  // The low-level primitive behind a kept move: object migration.
  pools::PoolAllocator pool(simulator.machine());
  auto block = pool.allocate(64u << 20, topo::PoolKind::DDR);
  std::memset(block.ptr, 0x42, 64u << 20);
  std::cout << "migrating a " << format_bytes(64.0 * MiB)
            << " object DDR -> HBM... ";
  const auto moved = pool.migrate(block.ptr, topo::PoolKind::HBM);
  std::cout << "now on node " << moved.node << " ("
            << topo::to_string(moved.kind) << "), contents "
            << (static_cast<unsigned char*>(moved.ptr)[12345] == 0x42
                    ? "intact"
                    : "CORRUPT")
            << '\n';
  pool.deallocate(moved.ptr);
  return 0;
}
