// online_tuning — the paper's stated future direction (Sec. III): online
// profiling and control instead of an offline 2^n sweep.
//
// The OnlineTuner starts from all-DDR and, between iterations of the
// running application, greedily migrates the allocation group with the
// best expected gain per HBM byte, keeping a move only when the next
// observed iteration confirms the improvement. This example tunes every
// paper benchmark online and compares cost (measured runs) and result
// against the exhaustive sweep, then demonstrates the matching low-level
// primitive: live object migration in the pool allocator.
#include <cstring>
#include <iostream>

#include "common/table.h"
#include "common/units.h"
#include "core/online.h"
#include "core/summary.h"
#include "simmem/simulator.h"
#include "workloads/app_models.h"

int main() {
  using namespace hmpt;

  auto simulator = sim::MachineSimulator::paper_platform();
  const auto suite = workloads::paper_benchmark_suite(simulator);

  Table table({"Application", "online speedup", "exhaustive max",
               "online runs", "exhaustive runs"});
  for (const auto& app : suite) {
    std::vector<double> bytes;
    for (const auto& g : app.workload->groups()) bytes.push_back(g.bytes);
    tuner::ConfigSpace space(bytes);

    tuner::OnlineTuner online(simulator, app.context);
    const auto result = online.tune(*app.workload, space);

    tuner::ExperimentRunner runner(simulator, app.context, {3, true});
    const auto sweep = runner.sweep(*app.workload, space);
    const auto summary = tuner::summarize(sweep);

    table.add_row({app.name, cell(result.speedup, 2) + "x",
                   cell(summary.max_speedup, 2) + "x",
                   std::to_string(result.iterations_used),
                   std::to_string(3 * space.size())});
  }
  std::cout << table.to_text() << '\n';

  // Show one trajectory in detail.
  const auto mg = workloads::make_mg_model(simulator);
  std::vector<double> bytes;
  for (const auto& g : mg.workload->groups()) bytes.push_back(g.bytes);
  tuner::ConfigSpace space(bytes);
  tuner::OnlineTuner online(simulator, mg.context);
  const auto result = online.tune(*mg.workload, space);
  std::cout << "MG online trajectory (baseline "
            << format_time(result.baseline_time) << "):\n";
  for (const auto& step : result.trajectory) {
    std::cout << "  iter " << step.iteration << ": try group "
              << step.moved_group << (step.to_hbm ? " -> HBM" : " -> DDR")
              << ", observed " << format_time(step.observed_time) << " — "
              << (step.kept ? "kept" : "reverted") << '\n';
  }
  std::cout << "final: " << cell(result.speedup, 2) << "x in "
            << result.iterations_used << " measured iterations\n\n";

  // The low-level primitive behind a kept move: object migration.
  pools::PoolAllocator pool(simulator.machine());
  auto block = pool.allocate(64u << 20, topo::PoolKind::DDR);
  std::memset(block.ptr, 0x42, 64u << 20);
  std::cout << "migrating a " << format_bytes(64.0 * MiB)
            << " object DDR -> HBM... ";
  const auto moved = pool.migrate(block.ptr, topo::PoolKind::HBM);
  std::cout << "now on node " << moved.node << " ("
            << topo::to_string(moved.kind) << "), contents "
            << (static_cast<unsigned char*>(moved.ptr)[12345] == 0x42
                    ? "intact"
                    : "CORRUPT")
            << '\n';
  pool.deallocate(moved.ptr);
  return 0;
}
