// campaign_sweep — drive a scenario-matrix campaign programmatically.
//
// Builds the same kind of matrix a campaign file declares (three paper
// workloads × two platforms × all three strategies), runs it through the
// CampaignRunner with an on-disk outcome store, then re-runs with resume
// to show that a finished campaign costs nothing: every scenario loads
// from the store and the aggregate artefacts come out byte-identical.
#include <filesystem>
#include <iostream>

#include "campaign/aggregate.h"
#include "campaign/campaign.h"

int main() {
  using namespace hmpt;

  campaign::ScenarioMatrix matrix;
  matrix.workloads = {campaign::parse_workload_spec("mg"),
                      campaign::parse_workload_spec("bt"),
                      campaign::parse_workload_spec("kwave")};
  matrix.platforms = {"xeon-max", "spr-cxl"};
  matrix.strategies = {"exhaustive", "estimator", "online"};
  matrix.repetitions = 3;

  const auto scenarios = matrix.expand();
  std::cout << "campaign of " << scenarios.size() << " scenarios:\n"
            << campaign::plan_table(scenarios).to_text() << "\n";

  campaign::CampaignOptions options;
  options.output_dir =
      (std::filesystem::temp_directory_path() / "hmpt_campaign_sweep")
          .string();
  options.scenario_jobs = 0;  // one scenario per hardware thread

  const campaign::CampaignRunner runner(options);
  const auto cold = runner.run(scenarios);
  std::cout << "cold run: executed " << cold.executed << ", cached "
            << cold.cached << "\n\nranked scenarios:\n"
            << campaign::ranked_table(cold).to_text() << "\n";

  // Second run with --resume semantics: everything is served from the
  // outcome store, nothing executes.
  auto resumed_options = options;
  resumed_options.resume = true;
  const auto warm = campaign::CampaignRunner(resumed_options).run(scenarios);
  std::cout << "resumed run: executed " << warm.executed << ", cached "
            << warm.cached << "\n";
  std::cout << "runs.csv identical across resume: "
            << (campaign::runs_table(cold).to_csv() ==
                        campaign::runs_table(warm).to_csv()
                    ? "yes"
                    : "NO")
            << "\n";
  std::cout << "outcome store: " << runner.store().directory()
            << "/outcomes/\n";
  return 0;
}
