// cxl_tiering — placement tuning across three memory tiers.
//
// Runs the NPB Multi-Grid model on the HBM / DDR / CXL platform
// (single-socket Xeon Max plus a CXL memory expander) and shows what the
// k-tier search adds over the paper's two-tier sweep:
//   * the exhaustive strategy enumerates 3^n placements in mixed-radix
//     Gray order (one group moves one tier per step);
//   * per-tier capacity budgets steer the choice — squeezing the HBM
//     budget pushes cold groups to CXL instead of DDR when that frees DDR
//     bandwidth for the hot ones;
//   * restricting the same machine to --tiers 2 reproduces the paper's
//     two-tier search exactly.
//
// Build & run:  cmake --build build && ./build/examples/cxl_tiering
#include <iostream>

#include "common/table.h"
#include "common/units.h"
#include "core/report.h"
#include "core/session.h"
#include "workloads/app_models.h"

int main() {
  using namespace hmpt;

  auto simulator = sim::MachineSimulator::cxl_tiered_platform();
  const auto app = workloads::make_mg_model(simulator);
  std::cout << simulator.machine().describe() << "\n";
  std::cout << "memory tiers: " << simulator.machine().num_memory_tiers()
            << " (DDR / HBM / CXL)\n\n";

  // Full three-tier sweep: 3^n configurations.
  const auto three_tier = tuner::Session::on(simulator)
                              .workload(*app.workload)
                              .context(app.context)
                              .run();
  std::cout << three_tier.to_text() << "\n";

  // The same machine restricted to the paper's two-tier space.
  const auto two_tier = tuner::Session::on(simulator)
                            .workload(*app.workload)
                            .context(app.context)
                            .tiers(2)
                            .run();
  std::cout << "two-tier restriction measures " << two_tier.configs_measured
            << " configurations (vs " << three_tier.configs_measured
            << " with CXL) and recommends "
            << tuner::mask_label(two_tier.chosen_mask, two_tier.num_groups)
            << " at " << cell(two_tier.speedup, 2) << "x\n\n";

  // Per-tier budgets: 10 GB of HBM forces one hot group out; 64 GB of CXL
  // absorbs the cold group, keeping DDR for the remaining hot one.
  const auto budgeted = tuner::Session::on(simulator)
                            .workload(*app.workload)
                            .context(app.context)
                            .tier_budget_gb(1, 10.0)
                            .tier_budget_gb(2, 64.0)
                            .run();
  std::cout << "with 10 GB HBM + 64 GB CXL budgets: "
            << tuner::mask_label(budgeted.chosen_mask, budgeted.num_groups,
                                 budgeted.num_tiers)
            << " at " << cell(budgeted.speedup, 2) << "x using "
            << format_bytes(budgeted.hbm_bytes) << " of HBM\n";

  // The chosen placement as a per-group tier vector.
  std::cout << "placement vector:";
  for (int g = 0; g < budgeted.num_groups; ++g)
    std::cout << ' ' << app.workload->groups()[static_cast<std::size_t>(g)].label
              << "->"
              << topo::to_string(budgeted.chosen_placement.of(g));
  std::cout << '\n';
  return 0;
}
