// kwave_tuning — the paper's real-application case study (Sec. IV-B).
//
// k-Wave's 34 allocations are folded with domain knowledge: the three
// components of each vector field form one group, the complex FFT
// temporaries stay separate. This example runs the executable mini solver
// through the shim to demonstrate the custom grouping on real allocations,
// then analyses the paper-scale 512^3 model and reports the Fig. 15
// summary view.
#include <iostream>

#include "common/units.h"
#include "core/grouping.h"
#include "core/report.h"
#include "core/summary.h"
#include "simmem/simulator.h"
#include "workloads/app_models.h"
#include "workloads/kwave.h"

int main() {
  using namespace hmpt;

  auto simulator = sim::MachineSimulator::paper_platform();

  // --- Part 1: profile the executable mini solver with custom grouping.
  pools::PoolAllocator pool(simulator.machine());
  shim::ShimAllocator shim(pool);
  sample::IbsSampler sampler({256, sample::SamplingMode::Poisson, 3});
  workloads::KWaveConfig config;
  config.n = 16;
  config.steps = 2;
  std::cout << "running mini k-Wave (" << config.n << "^3, "
            << config.steps << " steps) through the shim...\n";
  const auto run = workloads::run_mini_kwave(shim, config, &sampler);
  std::cout << "  finite: " << (run.finite ? "yes" : "NO")
            << ", mass drift: " << run.mass_drift << "\n\n";

  const auto usage = shim.registry().site_usage(shim.sites());
  const auto densities = tuner::site_densities(
      shim.registry(), shim.sites(), sampler.report());
  const auto groups = tuner::build_groups_by_labels(
      usage, densities,
      {{"kwave::fft_tmp"},
       {"kwave::u_vec"},
       {"kwave::p"},
       {"kwave::rho"}});
  std::cout << "custom allocation grouping (vector fields folded):\n";
  for (const auto& g : groups)
    std::cout << "  " << g.label << "  " << format_bytes(g.bytes)
              << "  density " << format_percent(g.access_density) << '\n';

  // --- Part 2: paper-scale analysis (512^3, Fig. 15).
  const auto app = workloads::make_kwave_model(simulator);
  std::cout << "\nanalysing " << app.name << " ("
            << format_bytes(app.memory_bytes) << ", "
            << app.filtered_allocations << " filtered allocations -> "
            << app.workload->num_groups() << " groups)\n\n";

  std::vector<double> bytes;
  for (const auto& g : app.workload->groups()) bytes.push_back(g.bytes);
  tuner::ConfigSpace space(bytes);
  tuner::ExperimentRunner runner(simulator, app.context, {3, true});
  const auto sweep = runner.sweep(*app.workload, space);
  const auto summary = tuner::summarize(sweep);

  std::cout << tuner::render_summary_view(summary, app.variant).scatter
            << '\n';
  std::cout << "speedup " << cell(summary.max_speedup, 2)
            << "x; 90 % of it needs " << format_percent(summary.usage90)
            << " of the data in HBM (paper: 76.8 %) — more than the NPB\n"
            << "codes because k-Wave is already optimised for a small\n"
            << "memory footprint (Sec. IV-B)\n";
  return 0;
}
