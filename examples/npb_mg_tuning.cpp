// npb_mg_tuning — the paper's flagship case study (Sec. III-A, Fig. 7):
// full placement analysis of the NPB Multi-Grid benchmark. Shows both the
// detailed view (per-configuration bars with measured vs linear-estimate
// speedup) and the summary view (speedup vs HBM footprint), then derives
// the minimal-footprint plan achieving 90 % of the maximum speedup.
#include <iostream>

#include "common/units.h"
#include "core/planner.h"
#include "core/report.h"
#include "core/summary.h"
#include "simmem/simulator.h"
#include "workloads/app_models.h"

int main() {
  using namespace hmpt;

  auto simulator = sim::MachineSimulator::paper_platform();
  const auto app = workloads::make_mg_model(simulator);
  std::cout << "analysing " << app.name << " (" << app.variant << "), "
            << format_bytes(app.memory_bytes) << " across "
            << app.workload->num_groups() << " allocation groups\n\n";

  std::vector<double> bytes;
  for (const auto& g : app.workload->groups()) {
    std::cout << "  group " << g.label << ": " << format_bytes(g.bytes)
              << '\n';
    bytes.push_back(g.bytes);
  }

  tuner::ConfigSpace space(bytes);
  std::cout << "\nsweeping " << space.size()
            << " placement configurations x 3 repetitions...\n\n";
  tuner::ExperimentRunner runner(simulator, app.context, {3, true});
  const auto sweep = runner.sweep(*app.workload, space);
  const auto summary = tuner::summarize(sweep);

  const auto detailed = tuner::render_detailed_view(sweep, summary);
  std::cout << "detailed view (Fig. 7a):\n"
            << detailed.table.to_text() << '\n'
            << detailed.bar_chart << '\n';

  const auto view = tuner::render_summary_view(summary, app.variant);
  std::cout << "summary view (Fig. 7b):\n" << view.scatter << '\n';

  std::cout << "maximum speedup " << cell(summary.max_speedup, 2) << "x at "
            << format_percent(summary.max_usage) << " of data in HBM\n"
            << "90 % of that (" << cell(summary.threshold90, 2)
            << "x) needs only " << format_percent(summary.usage90)
            << " in HBM — configuration "
            << tuner::mask_label(summary.usage90_mask, sweep.num_groups)
            << "\n\n";

  // What if this socket only had 16 GB of free HBM? Ask the planner.
  tuner::CapacityPlanner planner(sweep, space);
  const double budget = 16.0 * GB;
  const auto constrained = planner.best_under_budget(budget);
  std::cout << "under a " << format_bytes(budget)
            << " HBM budget the best placement is "
            << tuner::mask_label(constrained.mask, sweep.num_groups)
            << " at " << cell(constrained.speedup, 2) << "x ("
            << format_bytes(constrained.hbm_bytes) << " of HBM)\n";
  return 0;
}
