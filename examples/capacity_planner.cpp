// capacity_planner — using the analysis for deployment decisions.
//
// The paper's conclusion is capacity-oriented: 25-30 % of application data
// can stay in DDR at near-peak performance, freeing scarce HBM (16 GB per
// tile). This example sweeps an HBM budget from 0 to the full footprint
// for every benchmark and prints the achievable speedup at each budget
// (the measured Pareto front), plus the knapsack-planned placement for a
// group count too large to sweep exhaustively.
#include <iostream>

#include "common/table.h"
#include "common/units.h"
#include "core/planner.h"
#include "core/report.h"
#include "core/summary.h"
#include "simmem/simulator.h"
#include "workloads/app_models.h"

int main() {
  using namespace hmpt;

  auto simulator = sim::MachineSimulator::paper_platform();
  const auto suite = workloads::paper_benchmark_suite(simulator);

  std::cout << "achievable speedup under an HBM capacity budget\n\n";
  Table table({"Application", "budget 25%", "budget 50%", "budget 75%",
               "unlimited", "bytes for 90%"});

  for (const auto& app : suite) {
    std::vector<double> bytes;
    for (const auto& g : app.workload->groups()) bytes.push_back(g.bytes);
    tuner::ConfigSpace space(bytes);
    tuner::ExperimentRunner runner(simulator, app.context, {2, true});
    const auto sweep = runner.sweep(*app.workload, space);
    tuner::CapacityPlanner planner(sweep, space);

    std::vector<std::string> row{app.name};
    for (double fraction : {0.25, 0.50, 0.75, 1.0}) {
      const auto choice =
          planner.best_under_budget(fraction * space.total_bytes());
      row.push_back(cell(choice.speedup, 2) + "x");
    }
    const auto summary = tuner::summarize(sweep);
    const auto cheapest = planner.cheapest_reaching(summary.threshold90);
    row.push_back(cheapest ? format_bytes(cheapest->hbm_bytes) : "-");
    table.add_row(row);
  }
  std::cout << table.to_text() << '\n';

  // Knapsack planning on the linear estimator: useful when the group count
  // makes 2^n measurement sweeps impractical.
  const auto sp = workloads::make_sp_model(simulator);
  std::vector<double> bytes;
  for (const auto& g : sp.workload->groups()) bytes.push_back(g.bytes);
  tuner::ConfigSpace space(bytes);
  tuner::ExperimentRunner runner(simulator, sp.context, {1, true});
  const auto sweep = runner.sweep(*sp.workload, space);
  const tuner::LinearEstimator estimator(sweep);

  std::cout << "knapsack plan for " << sp.name
            << " under half its footprint:\n";
  const auto plan = tuner::knapsack_plan(estimator, bytes,
                                         0.5 * space.total_bytes());
  std::cout << "  placement "
            << tuner::mask_label(plan.mask, space.num_groups())
            << ", estimated " << cell(plan.speedup, 2) << "x using "
            << format_bytes(plan.hbm_bytes) << " of HBM\n"
            << "  (measured at that placement: "
            << cell(sweep.of(plan.mask).speedup, 2) << "x)\n";
  return 0;
}
